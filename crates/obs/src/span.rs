//! Causal span graph — the analyzer's node/edge model.
//!
//! [`SpanGraph::build`] folds a seq-sorted event stream (one
//! [`crate::bus::EventBus::drain`] worth, or several concatenated) into
//! three node kinds:
//!
//! * **task nodes** — `[TaskStart, TaskEnd]` intervals, with an
//!   *effective finish* extended to `TaskCompleted` for tasks that ended
//!   blocked on event holds (the TAMPI_Iwait state);
//! * **message nodes** — `[SendPosted, MsgDelivered]` intervals keyed by
//!   the process-unique `match_id`, carrying both endpoints' task
//!   attribution (the cross-rank causal edges);
//! * **wait nodes** — `WaitSpan` intervals where a thread actually
//!   parked (request waits, waitany slow paths, taskwaits).
//!
//! Edges are predecessor lists: `DepEdge` for task → task, the message's
//! `recv_task` for message → task, and the send-side `task` for
//! task → message. [`crate::critpath`] walks these backwards to decompose
//! per-timestep critical paths; [`crate::report`] folds the same graph
//! into per-rank busy/idle/overlap attribution.
//!
//! The module also hosts [`overlap_fraction`], the sweep-line
//! "fraction of busy time with ≥ 2 distinct kinds active" measure. It is
//! the single source of truth: `core`'s `Trace::overlap_fraction`
//! delegates here, and the per-rank report numbers come from the same
//! function over the same `Span` events.

use crate::event::{Event, EventData};
use std::collections::HashMap;

/// Critical-path cost category — the five-way split of the report.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Category {
    /// Useful numerical work: stencil sweeps, checksums, refinement
    /// copies.
    Compute,
    /// Marshalling: face pack/unpack and intra-rank copies.
    Pack,
    /// Message time on the wire (send post → delivery), fabric queueing
    /// included.
    Transit,
    /// Blocked time: parked waits and causal gaps on the critical path.
    Wait,
    /// Runtime overhead: send/recv issue tasks, exchange bookkeeping,
    /// and anything unclassified.
    Runtime,
}

impl Category {
    /// Stable lowercase name, used as the report's JSON key stem.
    pub fn name(&self) -> &'static str {
        match self {
            Category::Compute => "compute",
            Category::Pack => "pack",
            Category::Transit => "transit",
            Category::Wait => "wait",
            Category::Runtime => "runtime",
        }
    }

    /// Classifies a task label (or coarse span kind) into a category.
    /// Matching is by prefix so decorated labels ("stencil b12") land in
    /// the same bucket as their plain form.
    pub fn of_label(label: &str) -> Category {
        const COMPUTE: [&str; 5] = [
            "stencil",
            "checksum_local",
            "checksum_remote",
            "boundary",
            "refine_copy",
        ];
        const PACK: [&str; 3] = ["pack", "unpack", "local_copy"];
        if label.starts_with("wait") {
            return Category::Wait;
        }
        if COMPUTE.iter().any(|p| label.starts_with(p)) {
            return Category::Compute;
        }
        if PACK.iter().any(|p| label.starts_with(p)) {
            return Category::Pack;
        }
        Category::Runtime
    }
}

/// One task's lifetime as seen by the analyzer.
#[derive(Debug, Clone, Default)]
pub struct TaskNode {
    /// taskrt task id.
    pub id: u64,
    /// Task label (empty if the TaskStart event was dropped).
    pub label: &'static str,
    /// Rank the task executed on.
    pub rank: u32,
    /// Worker lane the task executed on (tasks on one lane run in
    /// program order — the analyzer's resource-dependency fallback edge).
    pub worker: u32,
    /// Body start, bus microseconds.
    pub start_us: u64,
    /// Body end, bus microseconds.
    pub end_us: u64,
    /// Full release (TaskCompleted) — exceeds `end_us` for tasks that
    /// ended blocked on event holds. 0 if never observed.
    pub finish_us: u64,
    /// Time the body returned still holding event holds (TaskBlocked);
    /// 0 = never blocked. A task with `blocked_us > 0` and
    /// `finish_us == 0` is *currently* blocked — the watchdog's
    /// blocked-chain diagnosis starts from these.
    pub blocked_us: u64,
    /// Predecessor task ids (DepEdge).
    pub preds: Vec<u64>,
    /// Match ids of messages delivered into this task's receives.
    pub msg_preds: Vec<u64>,
}

impl TaskNode {
    /// The instant this task stopped holding up successors: body end, or
    /// the deferred release for blocked tasks.
    pub fn end_eff(&self) -> u64 {
        self.end_us.max(self.finish_us)
    }
}

/// One matched message's flight, keyed by `match_id`.
#[derive(Debug, Clone, Default)]
pub struct MessageNode {
    /// Process-unique match id (always > 0 here).
    pub match_id: u64,
    /// Task that posted the send (0 = outside any task).
    pub send_task: u64,
    /// Task whose receive it satisfied (0 = outside any task).
    pub recv_task: u64,
    /// Sending rank.
    pub src: u32,
    /// Receiving rank.
    pub dst: u32,
    /// Payload bytes.
    pub bytes: u64,
    /// Send-post time, bus microseconds.
    pub posted_us: u64,
    /// Delivery time, bus microseconds (0 = still in flight).
    pub delivered_us: u64,
}

/// One parked-thread interval (request wait / waitany / taskwait).
#[derive(Debug, Clone)]
pub struct WaitNode {
    /// Rank whose thread parked.
    pub rank: u32,
    /// Wait kind name.
    pub kind: &'static str,
    /// Start, bus microseconds.
    pub start_us: u64,
    /// End, bus microseconds.
    pub end_us: u64,
}

/// Per-rank attribution summary derived from the graph.
#[derive(Debug, Clone)]
pub struct RankStats {
    /// Rank id.
    pub rank: u32,
    /// Union length of this rank's busy intervals, microseconds.
    pub busy_us: u64,
    /// Rank wall span minus busy, microseconds.
    pub idle_us: u64,
    /// Sweep-line overlap fraction (coarse `Span` events when present,
    /// task intervals keyed by label otherwise).
    pub overlap_fraction: f64,
    /// Tasks executed on this rank.
    pub tasks: u64,
    /// Parked waits observed on this rank.
    pub waits: u64,
    /// Total parked time, microseconds.
    pub wait_us: u64,
}

/// The assembled cross-rank span graph.
#[derive(Debug, Default)]
pub struct SpanGraph {
    /// Task nodes by taskrt id.
    pub tasks: HashMap<u64, TaskNode>,
    /// Message nodes by match id.
    pub messages: HashMap<u64, MessageNode>,
    /// Parked-wait intervals.
    pub waits: Vec<WaitNode>,
    /// Coarse phase spans: `(rank, kind, start_us, end_us)`.
    pub spans: Vec<(u32, &'static str, u64, u64)>,
    /// Rank-0 timestep marks `(tstep, t_us)`, sorted by time. These
    /// delimit the analyzer's per-timestep windows.
    pub timesteps: Vec<(u32, u64)>,
    /// Earliest observed timestamp, microseconds.
    pub min_us: u64,
    /// Latest observed timestamp, microseconds.
    pub max_us: u64,
}

impl SpanGraph {
    /// Folds a seq-sorted event slice into a graph. Tolerates ring
    /// overflow: a task whose `TaskStart` was dropped still gets a node
    /// from its later events, and a delivery without its send-post gets
    /// a zero-length message node.
    pub fn build(events: &[Event]) -> SpanGraph {
        let mut g = SpanGraph {
            min_us: u64::MAX,
            ..Default::default()
        };
        for ev in events {
            g.min_us = g.min_us.min(ev.t_us);
            g.max_us = g.max_us.max(ev.t_us);
            match &ev.data {
                EventData::TaskStart { id, label } => {
                    let t = g.tasks.entry(*id).or_default();
                    t.id = *id;
                    t.label = label;
                    t.rank = ev.rank;
                    t.worker = ev.worker;
                    t.start_us = ev.t_us;
                }
                EventData::TaskEnd { id, label } => {
                    let t = g.tasks.entry(*id).or_default();
                    t.id = *id;
                    if t.label.is_empty() {
                        t.label = label;
                        t.rank = ev.rank;
                        t.worker = ev.worker;
                    }
                    t.end_us = ev.t_us;
                }
                EventData::TaskCompleted { id } => {
                    let t = g.tasks.entry(*id).or_default();
                    t.id = *id;
                    t.finish_us = ev.t_us;
                }
                EventData::TaskBlocked { id, .. } => {
                    let t = g.tasks.entry(*id).or_default();
                    t.id = *id;
                    t.blocked_us = ev.t_us;
                }
                EventData::DepEdge { pred, succ } => {
                    let t = g.tasks.entry(*succ).or_default();
                    t.id = *succ;
                    t.preds.push(*pred);
                }
                EventData::SendPosted {
                    dst,
                    bytes,
                    match_id,
                    task,
                    ..
                } if *match_id > 0 => {
                    let m = g.messages.entry(*match_id).or_default();
                    m.match_id = *match_id;
                    m.send_task = *task;
                    m.src = ev.rank;
                    m.dst = *dst;
                    m.bytes = *bytes;
                    m.posted_us = ev.t_us;
                }
                EventData::MsgDelivered {
                    src,
                    bytes,
                    match_id,
                    recv_task,
                    ..
                } if *match_id > 0 => {
                    let m = g.messages.entry(*match_id).or_default();
                    m.match_id = *match_id;
                    m.recv_task = *recv_task;
                    m.dst = ev.rank;
                    m.bytes = *bytes;
                    m.delivered_us = ev.t_us;
                    if m.posted_us == 0 {
                        // Send-post dropped by ring overflow: degrade to a
                        // zero-length node so the edge survives.
                        m.posted_us = ev.t_us;
                        m.src = *src;
                    }
                    if *recv_task > 0 {
                        let t = g.tasks.entry(*recv_task).or_default();
                        t.id = *recv_task;
                        t.msg_preds.push(*match_id);
                    }
                }
                EventData::WaitSpan {
                    kind,
                    start_us,
                    end_us,
                } => {
                    g.max_us = g.max_us.max(*end_us);
                    g.waits.push(WaitNode {
                        rank: ev.rank,
                        kind,
                        start_us: *start_us,
                        end_us: *end_us,
                    });
                }
                EventData::Span {
                    kind,
                    start_us,
                    end_us,
                } => {
                    g.min_us = g.min_us.min(*start_us);
                    g.max_us = g.max_us.max(*end_us);
                    g.spans.push((ev.rank, kind, *start_us, *end_us));
                }
                EventData::TimestepMark { tstep } if ev.rank == 0 => {
                    g.timesteps.push((*tstep, ev.t_us));
                }
                _ => {}
            }
        }
        for t in g.tasks.values() {
            g.max_us = g.max_us.max(t.end_eff());
        }
        g.timesteps.sort_by_key(|&(_, t)| t);
        g.timesteps.dedup_by_key(|&mut (ts, _)| ts);
        if g.min_us == u64::MAX {
            g.min_us = 0;
        }
        g
    }

    /// Per-rank busy/idle/overlap attribution, sorted by rank.
    pub fn rank_stats(&self) -> Vec<RankStats> {
        // Busy intervals per rank: task bodies plus coarse spans (the
        // union de-duplicates the task-inside-span case).
        let mut busy: HashMap<u32, Vec<(u64, u64)>> = HashMap::new();
        let mut tasks_per: HashMap<u32, u64> = HashMap::new();
        for t in self.tasks.values() {
            if t.end_us > t.start_us {
                busy.entry(t.rank).or_default().push((t.start_us, t.end_us));
                *tasks_per.entry(t.rank).or_default() += 1;
            }
        }
        for &(rank, _, s, e) in &self.spans {
            if e > s {
                busy.entry(rank).or_default().push((s, e));
            }
        }
        let mut ranks: Vec<u32> = busy.keys().copied().collect();
        ranks.sort_unstable();
        let mut out = Vec::with_capacity(ranks.len());
        for rank in ranks {
            let intervals = &busy[&rank];
            let busy_us = union_len(intervals.clone());
            let lo = intervals.iter().map(|&(s, _)| s).min().unwrap_or(0);
            let hi = intervals.iter().map(|&(_, e)| e).max().unwrap_or(0);
            let (waits, wait_us) = self
                .waits
                .iter()
                .filter(|w| w.rank == rank)
                .fold((0u64, 0u64), |(n, us), w| {
                    (n + 1, us + w.end_us.saturating_sub(w.start_us))
                });
            out.push(RankStats {
                rank,
                busy_us,
                idle_us: (hi - lo).saturating_sub(busy_us),
                overlap_fraction: self.rank_overlap(rank),
                tasks: tasks_per.get(&rank).copied().unwrap_or(0),
                waits,
                wait_us,
            });
        }
        out
    }

    /// Sweep-line overlap fraction for one rank. Prefers the coarse
    /// `Span` events (exactly what `core::trace::Trace` records, so the
    /// two agree); ranks traced without the recorder fall back to task
    /// intervals keyed by label.
    pub fn rank_overlap(&self, rank: u32) -> f64 {
        let mut kinds: HashMap<&'static str, u32> = HashMap::new();
        let intern = |k: &'static str, kinds: &mut HashMap<&'static str, u32>| -> u32 {
            let next = kinds.len() as u32;
            *kinds.entry(k).or_insert(next)
        };
        let mut spans: Vec<(u32, u64, u64)> = self
            .spans
            .iter()
            .filter(|&&(r, ..)| r == rank)
            .map(|&(_, k, s, e)| (intern(k, &mut kinds), s, e))
            .collect();
        if spans.is_empty() {
            spans = self
                .tasks
                .values()
                .filter(|t| t.rank == rank && t.end_us > 0)
                .map(|t| (intern(t.label, &mut kinds), t.start_us, t.end_us))
                .collect();
        }
        overlap_fraction(&spans)
    }

    /// Mean per-rank overlap fraction over ranks that recorded anything.
    pub fn mean_overlap(&self) -> f64 {
        let stats = self.rank_stats();
        if stats.is_empty() {
            return 0.0;
        }
        stats.iter().map(|r| r.overlap_fraction).sum::<f64>() / stats.len() as f64
    }
}

/// Total length of the union of half-open intervals.
fn union_len(mut intervals: Vec<(u64, u64)>) -> u64 {
    intervals.sort_unstable();
    let mut total = 0u64;
    let mut horizon = 0u64;
    let mut started = false;
    for (s, e) in intervals {
        if !started || s > horizon {
            total += e.saturating_sub(s);
            horizon = e;
            started = true;
        } else if e > horizon {
            total += e - horizon;
            horizon = e;
        }
    }
    total
}

/// Fraction of busy time during which at least two spans of *different*
/// kinds were active — the "phases overlap" measure of the paper's
/// Fig. 3. Spans are `(kind_id, start, end)` in any consistent time
/// unit; returns 0 for fewer than two spans or zero busy time.
///
/// This is the sweep-line from `core::trace::Trace::overlap_fraction`,
/// lifted here so the analyzer and the legacy recorder share one
/// implementation (the recorder now delegates to this).
pub fn overlap_fraction(spans: &[(u32, u64, u64)]) -> f64 {
    if spans.len() < 2 {
        return 0.0;
    }
    // Edge ordering: ends sort before starts at equal timestamps, so
    // back-to-back spans of different kinds do not count as overlap.
    #[derive(PartialEq, Eq, PartialOrd, Ord)]
    enum Edge {
        End,
        Start,
    }
    let mut points: Vec<(u64, Edge, u32)> = Vec::with_capacity(spans.len() * 2);
    for &(kind, start, end) in spans {
        // Zero-measure spans contribute nothing, and their end edge would
        // sort *before* their start edge (see ordering above), leaving the
        // kind's active count wedged at one for the rest of the sweep.
        // Micro-second clocks produce these constantly for tiny intervals.
        if end <= start {
            continue;
        }
        points.push((start, Edge::Start, kind));
        points.push((end, Edge::End, kind));
    }
    if points.is_empty() {
        return 0.0;
    }
    points.sort_by(|a, b| a.0.cmp(&b.0).then_with(|| a.1.cmp(&b.1)));
    let mut active: HashMap<u32, usize> = HashMap::new();
    let mut overlap = 0u64;
    let mut busy = 0u64;
    let mut prev = points[0].0;
    for (t, edge, kind) in points {
        let span = t.saturating_sub(prev);
        let kinds_active = active.values().filter(|&&c| c > 0).count();
        if kinds_active >= 1 {
            busy += span;
        }
        if kinds_active >= 2 {
            overlap += span;
        }
        match edge {
            Edge::Start => *active.entry(kind).or_insert(0) += 1,
            Edge::End => {
                if let Some(c) = active.get_mut(&kind) {
                    *c = c.saturating_sub(1);
                }
            }
        }
        prev = t;
    }
    if busy == 0 {
        0.0
    } else {
        overlap as f64 / busy as f64
    }
}

/// Diagnoses a stall with the analyzer's own machinery: finds tasks
/// whose body returned still holding event holds (the TAMPI_Iwait
/// state) and that never completed, pairs each with the receives it
/// still has outstanding, and follows the awaited-sender links rank to
/// rank to render the longest currently-blocked causal chain
/// (task → awaited message → sender rank → its blocked task → …).
/// Returns an empty string when nothing is blocked, which the watchdog
/// treats as "no causal diagnosis available".
pub fn blocked_chain_report(events: &[Event]) -> String {
    use std::fmt::Write as _;

    let graph = SpanGraph::build(events);
    // Outstanding receives per task: posted minus delivered. Wildcard
    // receives (src -1 / tag -2) match any delivery.
    let mut pending: HashMap<u64, Vec<(i32, i32)>> = HashMap::new();
    for ev in events {
        match &ev.data {
            EventData::RecvPosted { src, tag, task, .. } if *task > 0 => {
                pending.entry(*task).or_default().push((*src, *tag));
            }
            EventData::MsgDelivered {
                src,
                tag,
                recv_task,
                ..
            } if *recv_task > 0 => {
                if let Some(v) = pending.get_mut(recv_task) {
                    if let Some(pos) = v
                        .iter()
                        .position(|&(s, t)| (s < 0 || s as u32 == *src) && (t == -2 || t == *tag))
                    {
                        v.swap_remove(pos);
                    }
                }
            }
            _ => {}
        }
    }

    let mut blocked: Vec<&TaskNode> = graph
        .tasks
        .values()
        .filter(|t| t.blocked_us > 0 && t.finish_us == 0)
        .collect();
    if blocked.is_empty() {
        return String::new();
    }
    blocked.sort_by_key(|t| (t.blocked_us, t.id));
    // Per rank, the oldest still-blocked task: the hop target when a
    // chain crosses to that rank.
    let mut oldest_by_rank: HashMap<u32, &TaskNode> = HashMap::new();
    for t in &blocked {
        oldest_by_rank.entry(t.rank).or_insert(t);
    }

    // Greedy walk from every blocked task; keep the longest chain.
    // Each rank is visited at most once per walk, so revisiting one
    // means the chain closed on itself — the deadlock cycle.
    let mut best: Vec<(u64, Option<(i32, i32)>)> = Vec::new();
    for start in &blocked {
        let mut chain: Vec<(u64, Option<(i32, i32)>)> = Vec::new();
        let mut seen = std::collections::HashSet::new();
        let mut cur: &TaskNode = start;
        loop {
            if !seen.insert(cur.rank) {
                break;
            }
            let awaiting = pending.get(&cur.id).and_then(|v| v.first()).copied();
            chain.push((cur.id, awaiting));
            let Some((src, _)) = awaiting else { break };
            let Some(next) = (src >= 0)
                .then(|| oldest_by_rank.get(&(src as u32)))
                .flatten()
            else {
                break;
            };
            cur = next;
        }
        if chain.len() > best.len() {
            best = chain;
        }
    }

    let mut out = String::new();
    let _ = writeln!(
        out,
        "longest blocked chain ({} link(s); {} task(s) blocked on event holds):",
        best.len(),
        blocked.len()
    );
    for (i, (id, awaiting)) in best.iter().enumerate() {
        let t = &graph.tasks[id];
        let label = if t.label.is_empty() { "?" } else { t.label };
        let arrow = if i == 0 { "  " } else { "  -> " };
        let _ = write!(
            out,
            "{arrow}rank {} task {} `{label}` blocked since t+{} us",
            t.rank, t.id, t.blocked_us
        );
        match awaiting {
            Some((src, tag)) => {
                let _ = writeln!(out, ", awaiting recv(src={src}, tag={tag})");
            }
            None => {
                let _ = writeln!(out, " (no outstanding receive attributed)");
            }
        }
    }
    if let Some(&(_, Some((src, _)))) = best.last() {
        if src >= 0
            && best.len() > 1
            && best
                .iter()
                .any(|(id, _)| graph.tasks[id].rank == src as u32)
        {
            let _ = writeln!(out, "  (the awaited sender is itself in the chain — cycle)");
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(seq: u64, t_us: u64, rank: u32, data: EventData) -> Event {
        Event {
            seq,
            t_us,
            rank,
            worker: 0,
            data,
        }
    }

    #[test]
    fn overlap_serial_is_zero() {
        assert_eq!(overlap_fraction(&[(0, 0, 10), (1, 10, 20)]), 0.0);
    }

    #[test]
    fn overlap_identical_is_one() {
        let f = overlap_fraction(&[(0, 1, 9), (1, 1, 9)]);
        assert!((f - 1.0).abs() < 1e-9, "{f}");
    }

    #[test]
    fn overlap_zero_length_and_short_inputs() {
        assert_eq!(overlap_fraction(&[]), 0.0);
        assert_eq!(overlap_fraction(&[(0, 0, 100)]), 0.0);
        assert_eq!(overlap_fraction(&[(0, 5, 5), (1, 5, 5)]), 0.0);
    }

    #[test]
    fn overlap_same_kind_concurrency_does_not_count() {
        // Two spans of the SAME kind overlapping: busy but not "overlap".
        assert_eq!(overlap_fraction(&[(0, 0, 10), (0, 0, 10)]), 0.0);
    }

    #[test]
    fn overlap_partial() {
        // Kind 0 over [0,10], kind 1 over [5,15]: overlap 5 of busy 15.
        let f = overlap_fraction(&[(0, 0, 10), (1, 5, 15)]);
        assert!((f - 5.0 / 15.0).abs() < 1e-9, "{f}");
    }

    #[test]
    fn category_mapping() {
        assert_eq!(Category::of_label("stencil"), Category::Compute);
        assert_eq!(Category::of_label("checksum_remote"), Category::Compute);
        assert_eq!(Category::of_label("pack"), Category::Pack);
        assert_eq!(Category::of_label("unpack b3"), Category::Pack);
        assert_eq!(Category::of_label("local_copy"), Category::Pack);
        assert_eq!(Category::of_label("waitany"), Category::Wait);
        assert_eq!(Category::of_label("send"), Category::Runtime);
        assert_eq!(Category::of_label("exchange_recv"), Category::Runtime);
        assert_eq!(Category::of_label("mystery"), Category::Runtime);
    }

    #[test]
    fn graph_builds_tasks_messages_and_edges() {
        let events = vec![
            ev(
                1,
                10,
                0,
                EventData::TaskStart {
                    id: 1,
                    label: "pack",
                },
            ),
            ev(
                2,
                20,
                0,
                EventData::TaskEnd {
                    id: 1,
                    label: "pack",
                },
            ),
            ev(3, 21, 0, EventData::TaskCompleted { id: 1 }),
            ev(4, 22, 0, EventData::DepEdge { pred: 1, succ: 2 }),
            ev(
                5,
                25,
                0,
                EventData::SendPosted {
                    dst: 1,
                    tag: 7,
                    comm: 0,
                    bytes: 64,
                    eager: true,
                    match_id: 9,
                    task: 1,
                },
            ),
            ev(
                6,
                30,
                1,
                EventData::TaskStart {
                    id: 2,
                    label: "stencil",
                },
            ),
            ev(
                7,
                40,
                1,
                EventData::MsgDelivered {
                    src: 0,
                    tag: 7,
                    comm: 0,
                    bytes: 64,
                    match_id: 9,
                    recv_task: 2,
                    queue_us: 15,
                },
            ),
            ev(
                8,
                55,
                1,
                EventData::TaskEnd {
                    id: 2,
                    label: "stencil",
                },
            ),
            ev(9, 5, 0, EventData::TimestepMark { tstep: 0 }),
        ];
        let g = SpanGraph::build(&events);
        assert_eq!(g.tasks.len(), 2);
        assert_eq!(g.messages.len(), 1);
        let t1 = &g.tasks[&1];
        assert_eq!((t1.start_us, t1.end_us, t1.finish_us), (10, 20, 21));
        assert_eq!(t1.end_eff(), 21);
        let t2 = &g.tasks[&2];
        assert_eq!(t2.preds, vec![1]);
        assert_eq!(t2.msg_preds, vec![9]);
        let m = &g.messages[&9];
        assert_eq!((m.send_task, m.recv_task), (1, 2));
        assert_eq!((m.src, m.dst), (0, 1));
        assert_eq!((m.posted_us, m.delivered_us), (25, 40));
        assert_eq!(g.timesteps, vec![(0, 5)]);
        assert_eq!(g.min_us, 5);
        assert_eq!(g.max_us, 55);
    }

    #[test]
    fn graph_tolerates_dropped_send_post() {
        let events = vec![ev(
            1,
            40,
            1,
            EventData::MsgDelivered {
                src: 0,
                tag: 7,
                comm: 0,
                bytes: 8,
                match_id: 3,
                recv_task: 0,
                queue_us: 0,
            },
        )];
        let g = SpanGraph::build(&events);
        let m = &g.messages[&3];
        assert_eq!((m.posted_us, m.delivered_us), (40, 40));
        assert_eq!(m.src, 0);
    }

    #[test]
    fn blocked_task_extends_to_completion() {
        let events = vec![
            ev(
                1,
                0,
                0,
                EventData::TaskStart {
                    id: 5,
                    label: "send",
                },
            ),
            ev(
                2,
                10,
                0,
                EventData::TaskEnd {
                    id: 5,
                    label: "send",
                },
            ),
            ev(3, 10, 0, EventData::TaskBlocked { id: 5, holds: 1 }),
            ev(4, 90, 0, EventData::TaskCompleted { id: 5 }),
        ];
        let g = SpanGraph::build(&events);
        assert_eq!(g.tasks[&5].end_eff(), 90);
        assert_eq!(g.max_us, 90);
    }

    #[test]
    fn rank_stats_busy_and_waits() {
        let events = vec![
            ev(
                1,
                0,
                0,
                EventData::TaskStart {
                    id: 1,
                    label: "stencil",
                },
            ),
            ev(
                2,
                50,
                0,
                EventData::TaskEnd {
                    id: 1,
                    label: "stencil",
                },
            ),
            ev(
                3,
                60,
                0,
                EventData::TaskStart {
                    id: 2,
                    label: "pack",
                },
            ),
            ev(
                4,
                80,
                0,
                EventData::TaskEnd {
                    id: 2,
                    label: "pack",
                },
            ),
            ev(
                5,
                80,
                0,
                EventData::WaitSpan {
                    kind: "taskwait",
                    start_us: 50,
                    end_us: 60,
                },
            ),
        ];
        let g = SpanGraph::build(&events);
        let stats = g.rank_stats();
        assert_eq!(stats.len(), 1);
        let r = &stats[0];
        assert_eq!(r.rank, 0);
        assert_eq!(r.busy_us, 70);
        assert_eq!(r.idle_us, 10);
        assert_eq!(r.tasks, 2);
        assert_eq!((r.waits, r.wait_us), (1, 10));
        // Serial tasks of different labels: no overlap.
        assert_eq!(r.overlap_fraction, 0.0);
    }

    #[test]
    fn rank_overlap_prefers_coarse_spans() {
        let events = vec![
            // Coarse spans say full overlap; tasks would say none.
            ev(
                1,
                100,
                0,
                EventData::Span {
                    kind: "stencil",
                    start_us: 0,
                    end_us: 100,
                },
            ),
            ev(
                2,
                100,
                0,
                EventData::Span {
                    kind: "unpack",
                    start_us: 0,
                    end_us: 100,
                },
            ),
            ev(
                3,
                0,
                0,
                EventData::TaskStart {
                    id: 1,
                    label: "stencil",
                },
            ),
            ev(
                4,
                10,
                0,
                EventData::TaskEnd {
                    id: 1,
                    label: "stencil",
                },
            ),
            ev(
                5,
                10,
                0,
                EventData::TaskStart {
                    id: 2,
                    label: "unpack",
                },
            ),
            ev(
                6,
                20,
                0,
                EventData::TaskEnd {
                    id: 2,
                    label: "unpack",
                },
            ),
        ];
        let g = SpanGraph::build(&events);
        assert!((g.rank_overlap(0) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn union_len_merges() {
        assert_eq!(union_len(vec![(0, 10), (5, 15), (20, 25)]), 20);
        assert_eq!(union_len(vec![]), 0);
        assert_eq!(union_len(vec![(3, 3)]), 0);
    }

    #[test]
    fn blocked_chain_follows_awaited_senders_and_flags_cycles() {
        // Rank 0's exchange task awaits a recv from rank 1 whose own
        // exchange task awaits a recv from rank 0: the classic deadlock.
        let events = vec![
            ev(
                1,
                0,
                0,
                EventData::TaskStart {
                    id: 1,
                    label: "exchange_recv",
                },
            ),
            ev(
                2,
                5,
                0,
                EventData::RecvPosted {
                    src: 1,
                    tag: 7,
                    comm: 0,
                    task: 1,
                },
            ),
            ev(
                3,
                10,
                0,
                EventData::TaskEnd {
                    id: 1,
                    label: "exchange_recv",
                },
            ),
            ev(4, 10, 0, EventData::TaskBlocked { id: 1, holds: 1 }),
            ev(
                5,
                1,
                1,
                EventData::TaskStart {
                    id: 2,
                    label: "exchange_recv",
                },
            ),
            ev(
                6,
                6,
                1,
                EventData::RecvPosted {
                    src: 0,
                    tag: 7,
                    comm: 0,
                    task: 2,
                },
            ),
            ev(
                7,
                12,
                1,
                EventData::TaskEnd {
                    id: 2,
                    label: "exchange_recv",
                },
            ),
            ev(8, 12, 1, EventData::TaskBlocked { id: 2, holds: 1 }),
        ];
        let report = blocked_chain_report(&events);
        assert!(report.contains("2 link(s)"), "{report}");
        assert!(report.contains("rank 0 task 1"), "{report}");
        assert!(report.contains("rank 1 task 2"), "{report}");
        assert!(report.contains("awaiting recv(src=1, tag=7)"), "{report}");
        assert!(report.contains("cycle"), "{report}");
    }

    #[test]
    fn blocked_chain_ignores_completed_and_satisfied_tasks() {
        // A task that blocked but then completed, and one whose awaited
        // message was delivered, must not appear.
        let events = vec![
            ev(
                1,
                0,
                0,
                EventData::TaskStart {
                    id: 1,
                    label: "send",
                },
            ),
            ev(
                2,
                5,
                0,
                EventData::TaskEnd {
                    id: 1,
                    label: "send",
                },
            ),
            ev(3, 5, 0, EventData::TaskBlocked { id: 1, holds: 1 }),
            ev(4, 9, 0, EventData::TaskCompleted { id: 1 }),
            ev(
                5,
                0,
                1,
                EventData::TaskStart {
                    id: 2,
                    label: "recv",
                },
            ),
            ev(
                6,
                2,
                1,
                EventData::RecvPosted {
                    src: 0,
                    tag: 3,
                    comm: 0,
                    task: 2,
                },
            ),
            ev(
                7,
                6,
                1,
                EventData::TaskEnd {
                    id: 2,
                    label: "recv",
                },
            ),
            ev(8, 6, 1, EventData::TaskBlocked { id: 2, holds: 1 }),
            ev(
                9,
                8,
                1,
                EventData::MsgDelivered {
                    src: 0,
                    tag: 3,
                    comm: 0,
                    bytes: 8,
                    match_id: 4,
                    recv_task: 2,
                    queue_us: 0,
                },
            ),
        ];
        // Task 1 completed; task 2 is still "blocked" (no TaskCompleted)
        // but its receive was satisfied, so the chain stops at it with no
        // outstanding receive.
        let report = blocked_chain_report(&events);
        assert!(!report.contains("task 1 "), "{report}");
        assert!(report.contains("no outstanding receive"), "{report}");

        // Nothing blocked at all → empty diagnosis.
        assert_eq!(blocked_chain_report(&events[..4]), String::new());
    }

    #[test]
    fn zero_length_spans_do_not_wedge_the_sweep() {
        // Regression: a zero-measure span's end edge sorts before its
        // start edge, so the decrement saturated at zero and the start
        // left the kind "active" for the rest of the sweep — every later
        // disjoint span then counted as overlap. Common with micro-second
        // clocks where short intervals round to zero length.
        let spans = vec![(0u32, 5u64, 5u64), (1, 10, 20), (2, 30, 40)];
        assert_eq!(overlap_fraction(&spans), 0.0);
        // Purely zero-measure input degenerates to "no busy time".
        assert_eq!(overlap_fraction(&[(0, 1, 1), (1, 2, 2)]), 0.0);
    }
}
