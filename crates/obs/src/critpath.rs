//! Per-timestep critical-path extraction over the [`crate::span`] graph.
//!
//! For each timestep window (delimited by rank-0 `TimestepMark` events;
//! one window covering everything when no marks were traced) the
//! analyzer picks the latest-finishing node in the window and walks its
//! predecessor edges backwards, attributing every microsecond of
//! `[window start, terminal finish]` to exactly one category:
//!
//! * time inside the current node → the node's [`Category`] (task label
//!   mapping, or `transit` for message nodes);
//! * causal gaps — the stretch between a predecessor's finish and the
//!   current node's start — → `wait` (the node existed but could not
//!   run: dependency released late, or scheduler delay);
//! * the stretch before the chain's first node → `wait` (ramp-up).
//!
//! Besides the explicit causal edges (`DepEdge`, message delivery, send
//! post) the walk uses two *resource* fallback edges so a chain does not
//! die on a node with no recorded predecessor: a task's previous task on
//! the same `(rank, worker)` lane (one lane runs in program order), and
//! — for messages posted outside any task (main-thread exchanges,
//! `task = 0`) — the latest task on the sending rank finishing before
//! the post. Both are real serialization, not guesses: the lane edge is
//! the worker being busy, the rank edge approximates the taskwait that
//! main-thread sends follow.
//!
//! Because each step hands the cursor to `min(pred finish, cursor)` and
//! contributes the difference, the per-category sums telescope to
//! exactly `window end − window start` — the report's "critical path
//! explains wall-clock" property is structural, not approximate.

use crate::span::{Category, SpanGraph};
use std::collections::{HashMap, HashSet};

/// Critical-path time split by category, microseconds.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Breakdown {
    /// Useful numerical work on the path.
    pub compute_us: u64,
    /// Pack/unpack/local-copy marshalling on the path.
    pub pack_us: u64,
    /// Message flight time on the path.
    pub transit_us: u64,
    /// Blocked/causal-gap time on the path.
    pub wait_us: u64,
    /// Runtime overhead on the path.
    pub runtime_us: u64,
}

impl Breakdown {
    /// Adds `us` to the bucket for `cat`.
    pub fn add(&mut self, cat: Category, us: u64) {
        match cat {
            Category::Compute => self.compute_us += us,
            Category::Pack => self.pack_us += us,
            Category::Transit => self.transit_us += us,
            Category::Wait => self.wait_us += us,
            Category::Runtime => self.runtime_us += us,
        }
    }

    /// Sum over all buckets.
    pub fn total(&self) -> u64 {
        self.compute_us + self.pack_us + self.transit_us + self.wait_us + self.runtime_us
    }
}

/// One timestep window's critical path.
#[derive(Debug, Clone)]
pub struct TimestepPath {
    /// Timestep index (`u32::MAX` for the no-marks fallback window).
    pub tstep: u32,
    /// Window start, bus microseconds.
    pub start_us: u64,
    /// Window end, bus microseconds.
    pub end_us: u64,
    /// Category split; `breakdown.total() == end_us - start_us` exactly.
    pub breakdown: Breakdown,
    /// Nodes visited on the walk (tasks + messages).
    pub nodes: u64,
}

/// A node reference during the walk: a task id or a message match id.
#[derive(Debug, Clone, Copy)]
enum NodeRef {
    Task(u64),
    Msg(u64),
}

/// One lane-index entry: `(start_us, end_us, task id)`.
type LaneEntry = (u64, u64, u64);

/// Sorted indexes for the resource-dependency fallback edges.
struct Lanes {
    /// `(rank, worker)` → tasks by [`LaneEntry`], start-sorted. One lane
    /// executes sequentially, so the task starting last before a given
    /// start is its program-order predecessor.
    by_lane: HashMap<(u32, u32), Vec<LaneEntry>>,
    /// rank → tasks by `(end_eff, id)`, end-sorted — for messages posted
    /// outside any task (the main-thread exchange after a taskwait).
    by_rank: HashMap<u32, Vec<(u64, u64)>>,
}

impl Lanes {
    fn build(graph: &SpanGraph) -> Lanes {
        let mut by_lane: HashMap<(u32, u32), Vec<LaneEntry>> = HashMap::new();
        let mut by_rank: HashMap<u32, Vec<(u64, u64)>> = HashMap::new();
        for t in graph.tasks.values() {
            if t.end_us > t.start_us {
                by_lane
                    .entry((t.rank, t.worker))
                    .or_default()
                    .push((t.start_us, t.end_us, t.id));
                by_rank.entry(t.rank).or_default().push((t.end_eff(), t.id));
            }
        }
        for v in by_lane.values_mut() {
            v.sort_unstable();
        }
        for v in by_rank.values_mut() {
            v.sort_unstable();
        }
        Lanes { by_lane, by_rank }
    }

    /// The task that started last on `(rank, worker)` strictly before
    /// `start`, excluding `id` itself. Its body end is when the worker
    /// freed up (a blocked task releases the worker at body end, not at
    /// its deferred completion).
    fn lane_pred(&self, rank: u32, worker: u32, start: u64, id: u64) -> Option<(u64, u64)> {
        let lane = self.by_lane.get(&(rank, worker))?;
        let mut i = lane.partition_point(|&(s, ..)| s < start);
        while i > 0 {
            i -= 1;
            let (_, end, pid) = lane[i];
            if pid != id {
                return Some((pid, end));
            }
        }
        None
    }

    /// The task on `rank` with the greatest effective finish at or before
    /// `at`.
    fn rank_pred(&self, rank: u32, at: u64) -> Option<(u64, u64)> {
        let tail = self.by_rank.get(&rank)?;
        let i = tail.partition_point(|&(e, _)| e <= at);
        i.checked_sub(1).map(|i| {
            let (end, id) = tail[i];
            (id, end)
        })
    }
}

/// Decomposes the graph into per-timestep critical paths. Windows are
/// `[mark_i, mark_{i+1})` with the last window closed at the graph's
/// latest timestamp; with no marks, a single `u32::MAX` window spans the
/// whole graph.
pub fn analyze(graph: &SpanGraph) -> Vec<TimestepPath> {
    let mut windows: Vec<(u32, u64, u64)> = Vec::new();
    if graph.timesteps.is_empty() {
        if graph.max_us > graph.min_us {
            windows.push((u32::MAX, graph.min_us, graph.max_us));
        }
    } else {
        for (i, &(tstep, start)) in graph.timesteps.iter().enumerate() {
            let end = graph
                .timesteps
                .get(i + 1)
                .map(|&(_, t)| t)
                .unwrap_or(graph.max_us)
                .max(start);
            windows.push((tstep, start, end));
        }
    }
    let lanes = Lanes::build(graph);
    windows
        .into_iter()
        .filter(|&(_, s, e)| e > s)
        .map(|(tstep, start, end)| walk_window(graph, &lanes, tstep, start, end))
        .collect()
}

/// Walks one window backwards from its latest-finishing node.
fn walk_window(
    graph: &SpanGraph,
    lanes: &Lanes,
    tstep: u32,
    floor: u64,
    ceil: u64,
) -> TimestepPath {
    let mut bd = Breakdown::default();
    let mut nodes = 0u64;

    // Terminal: the node with the greatest effective finish inside
    // (floor, ceil]. Nodes are binned by *finish* time, so work spilling
    // past a mark charges to the window it completed in.
    let in_window = |t: u64| t > floor && t <= ceil;
    let mut terminal: Option<(NodeRef, u64)> = None;
    for t in graph.tasks.values() {
        let e = t.end_eff();
        if in_window(e) && terminal.map(|(_, best)| e > best).unwrap_or(true) {
            terminal = Some((NodeRef::Task(t.id), e));
        }
    }
    for m in graph.messages.values() {
        if m.delivered_us > 0
            && in_window(m.delivered_us)
            && terminal
                .map(|(_, best)| m.delivered_us > best)
                .unwrap_or(true)
        {
            terminal = Some((NodeRef::Msg(m.match_id), m.delivered_us));
        }
    }

    let Some((mut node, terminal_end)) = terminal else {
        // Nothing finished in this window: all of it is unexplained
        // blocked time.
        bd.wait_us = ceil - floor;
        return TimestepPath {
            tstep,
            start_us: floor,
            end_us: ceil,
            breakdown: bd,
            nodes,
        };
    };

    // Trailing idle between the last finish and the window edge.
    bd.wait_us += ceil - terminal_end;

    let mut cur = terminal_end;
    // Each node is visited at most once (the walk follows a DAG path);
    // the set turns a malformed cyclic edge set into a clean stop with
    // the unaccounted remainder charged to `wait`.
    let mut visited: HashSet<(bool, u64)> = HashSet::new();
    loop {
        let key = match node {
            NodeRef::Task(id) => (false, id),
            NodeRef::Msg(id) => (true, id),
        };
        if !visited.insert(key) {
            bd.wait_us += cur - floor;
            break;
        }
        nodes += 1;
        let (cat, node_start) = match node {
            NodeRef::Task(id) => {
                let t = &graph.tasks[&id];
                (Category::of_label(t.label), t.start_us)
            }
            NodeRef::Msg(id) => (Category::Transit, graph.messages[&id].posted_us),
        };
        let start = node_start.clamp(floor, cur);
        match best_pred(graph, lanes, node, cur) {
            Some((pred, pred_end)) => {
                let pe = pred_end.min(cur).max(floor);
                bd.add(cat, cur - start.max(pe));
                if pe < start {
                    // The node's inputs were ready at `pe` but it only
                    // started at `start`: scheduling/queueing delay.
                    bd.wait_us += start - pe;
                }
                if pe <= floor {
                    break;
                }
                cur = pe;
                node = pred;
            }
            None => {
                bd.add(cat, cur - start);
                // Ramp-up before the chain's first node.
                bd.wait_us += start - floor;
                break;
            }
        }
    }
    debug_assert_eq!(
        bd.total(),
        ceil - floor,
        "walk must telescope to the window span"
    );
    TimestepPath {
        tstep,
        start_us: floor,
        end_us: ceil,
        breakdown: bd,
        nodes,
    }
}

/// The predecessor with the greatest effective finish *at or before*
/// `cur` — the edge that actually gated `node`. Candidates finishing
/// after `cur` are excluded outright: they cannot explain time before
/// the cursor, and clamping them used to send the walk wandering
/// sideways through zero-width steps until the revisit guard wrote the
/// whole window off as wait. (Deliveries that gate a blocked task
/// mid-body still qualify — they precede the task's end, which is where
/// the cursor sits when the task is first visited.)
fn best_pred(graph: &SpanGraph, lanes: &Lanes, node: NodeRef, cur: u64) -> Option<(NodeRef, u64)> {
    let mut best: Option<(NodeRef, u64)> = None;
    let mut consider = |cand: NodeRef, end: u64| {
        if end == 0 || end > cur {
            return;
        }
        if best.map(|(_, b)| end > b).unwrap_or(true) {
            best = Some((cand, end));
        }
    };
    match node {
        NodeRef::Task(id) => {
            let t = &graph.tasks[&id];
            for &p in &t.preds {
                if let Some(pt) = graph.tasks.get(&p) {
                    consider(NodeRef::Task(p), pt.end_eff());
                }
            }
            for &m in &t.msg_preds {
                if let Some(mn) = graph.messages.get(&m) {
                    consider(NodeRef::Msg(m), mn.delivered_us);
                }
            }
            // Resource edge: the worker ran something else right before
            // this task. Competes with the causal edges; whichever
            // released last is what actually gated the start.
            if let Some((pid, end)) = lanes.lane_pred(t.rank, t.worker, t.start_us, id) {
                consider(NodeRef::Task(pid), end);
            }
        }
        NodeRef::Msg(id) => {
            let m = &graph.messages[&id];
            let mut have_sender = false;
            if m.send_task > 0 {
                if let Some(st) = graph.tasks.get(&m.send_task) {
                    // The send post gates the message, and the post
                    // happens inside the sending task's body — use the
                    // post time, not the task's (possibly later) end.
                    consider(NodeRef::Task(m.send_task), m.posted_us.min(st.end_eff()));
                    have_sender = true;
                }
            }
            if !have_sender {
                // Posted outside any task (or the send task's events were
                // dropped): chain to whatever the sending rank finished
                // last before the post — main-thread exchanges follow a
                // taskwait, so this is the releasing dependency.
                if let Some((pid, end)) = lanes.rank_pred(m.src, m.posted_us) {
                    consider(NodeRef::Task(pid), end);
                }
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Event, EventData};

    fn ev(seq: u64, t_us: u64, rank: u32, data: EventData) -> Event {
        Event {
            seq,
            t_us,
            rank,
            worker: 0,
            data,
        }
    }

    fn task(seq: u64, rank: u32, id: u64, label: &'static str, s: u64, e: u64) -> Vec<Event> {
        vec![
            ev(seq, s, rank, EventData::TaskStart { id, label }),
            ev(seq + 1, e, rank, EventData::TaskEnd { id, label }),
            ev(seq + 2, e, rank, EventData::TaskCompleted { id }),
        ]
    }

    #[test]
    fn chain_decomposes_exactly() {
        // pack [0,10] -> dep -> stencil [15,40]; window [0,40].
        let mut events = task(1, 0, 1, "pack", 0, 10);
        events.extend(task(10, 0, 2, "stencil", 15, 40));
        events.push(ev(20, 0, 0, EventData::DepEdge { pred: 1, succ: 2 }));
        let g = SpanGraph::build(&events);
        let paths = analyze(&g);
        assert_eq!(paths.len(), 1);
        let p = &paths[0];
        assert_eq!(p.tstep, u32::MAX);
        assert_eq!((p.start_us, p.end_us), (0, 40));
        // stencil [15,40] = 25 compute; gap [10,15] = 5 wait;
        // pack [0,10] = 10 pack.
        assert_eq!(p.breakdown.compute_us, 25);
        assert_eq!(p.breakdown.wait_us, 5);
        assert_eq!(p.breakdown.pack_us, 10);
        assert_eq!(p.breakdown.total(), 40);
        assert_eq!(p.nodes, 2);
    }

    #[test]
    fn message_edge_contributes_transit() {
        // Rank 0: pack [0,10] posts msg at 8, delivered at 30 on rank 1,
        // consumed by stencil [30,50] (msg_pred edge). Window [0,50].
        let mut events = task(1, 0, 1, "pack", 0, 10);
        events.push(ev(
            4,
            8,
            0,
            EventData::SendPosted {
                dst: 1,
                tag: 0,
                comm: 0,
                bytes: 128,
                eager: false,
                match_id: 7,
                task: 1,
            },
        ));
        events.push(ev(
            5,
            30,
            1,
            EventData::TaskStart {
                id: 2,
                label: "stencil",
            },
        ));
        events.push(ev(
            6,
            30,
            1,
            EventData::MsgDelivered {
                src: 0,
                tag: 0,
                comm: 0,
                bytes: 128,
                match_id: 7,
                recv_task: 2,
                queue_us: 22,
            },
        ));
        events.push(ev(
            7,
            50,
            1,
            EventData::TaskEnd {
                id: 2,
                label: "stencil",
            },
        ));
        events.push(ev(8, 50, 1, EventData::TaskCompleted { id: 2 }));
        let g = SpanGraph::build(&events);
        let paths = analyze(&g);
        let p = &paths[0];
        // stencil [30,50] = 20 compute; msg [8,30] = 22 transit;
        // pack [0,8] = 8 pack (cursor handed at post time).
        assert_eq!(p.breakdown.compute_us, 20);
        assert_eq!(p.breakdown.transit_us, 22);
        assert_eq!(p.breakdown.pack_us, 8);
        assert_eq!(p.breakdown.wait_us, 0);
        assert_eq!(p.breakdown.total(), 50);
        assert_eq!(p.nodes, 3);
    }

    #[test]
    fn timestep_marks_split_windows() {
        let mut events = vec![
            ev(1, 0, 0, EventData::TimestepMark { tstep: 0 }),
            ev(2, 100, 0, EventData::TimestepMark { tstep: 1 }),
        ];
        events.extend(task(10, 0, 1, "stencil", 10, 90));
        events.extend(task(20, 0, 2, "stencil", 110, 200));
        let g = SpanGraph::build(&events);
        let paths = analyze(&g);
        assert_eq!(paths.len(), 2);
        assert_eq!(paths[0].tstep, 0);
        assert_eq!((paths[0].start_us, paths[0].end_us), (0, 100));
        // stencil [10,90] = 80 compute; ramp-up 10 + trailing 10 = wait.
        assert_eq!(paths[0].breakdown.compute_us, 80);
        assert_eq!(paths[0].breakdown.wait_us, 20);
        assert_eq!(paths[1].tstep, 1);
        assert_eq!((paths[1].start_us, paths[1].end_us), (100, 200));
        assert_eq!(paths[1].breakdown.compute_us, 90);
        assert_eq!(paths[1].breakdown.wait_us, 10);
        for p in &paths {
            assert_eq!(p.breakdown.total(), p.end_us - p.start_us);
        }
    }

    #[test]
    fn empty_window_is_all_wait() {
        let events = vec![
            ev(1, 0, 0, EventData::TimestepMark { tstep: 0 }),
            ev(2, 50, 0, EventData::TimestepMark { tstep: 1 }),
            ev(
                3,
                60,
                0,
                EventData::TaskStart {
                    id: 1,
                    label: "stencil",
                },
            ),
            ev(
                4,
                80,
                0,
                EventData::TaskEnd {
                    id: 1,
                    label: "stencil",
                },
            ),
            ev(5, 80, 0, EventData::TaskCompleted { id: 1 }),
        ];
        let g = SpanGraph::build(&events);
        let paths = analyze(&g);
        assert_eq!(paths[0].breakdown.wait_us, 50);
        assert_eq!(paths[0].breakdown.total(), 50);
        assert_eq!(paths[0].nodes, 0);
    }

    #[test]
    fn cycle_terminates_and_stays_exact() {
        // Mutual DepEdges (cannot happen in a real run) must not hang;
        // the revisit guard charges the remainder to wait.
        let mut events = task(1, 0, 1, "stencil", 0, 10);
        events.extend(task(10, 0, 2, "stencil", 5, 20));
        events.push(ev(20, 0, 0, EventData::DepEdge { pred: 1, succ: 2 }));
        events.push(ev(21, 0, 0, EventData::DepEdge { pred: 2, succ: 1 }));
        let g = SpanGraph::build(&events);
        let paths = analyze(&g);
        assert_eq!(paths.len(), 1);
        assert_eq!(paths[0].breakdown.total(), 20);
        assert_eq!(paths[0].nodes, 2);
    }

    #[test]
    fn blocked_sender_gates_at_post_time() {
        // Sender task blocked until 100 (end_eff 100) but posted at 8;
        // the message edge hands the cursor to 8, not 100.
        let events = vec![
            ev(
                1,
                0,
                0,
                EventData::TaskStart {
                    id: 1,
                    label: "send",
                },
            ),
            ev(
                2,
                10,
                0,
                EventData::TaskEnd {
                    id: 1,
                    label: "send",
                },
            ),
            ev(
                3,
                8,
                0,
                EventData::SendPosted {
                    dst: 1,
                    tag: 0,
                    comm: 0,
                    bytes: 8,
                    eager: false,
                    match_id: 4,
                    task: 1,
                },
            ),
            ev(4, 100, 0, EventData::TaskCompleted { id: 1 }),
            ev(
                5,
                40,
                1,
                EventData::TaskStart {
                    id: 2,
                    label: "stencil",
                },
            ),
            ev(
                6,
                40,
                1,
                EventData::MsgDelivered {
                    src: 0,
                    tag: 0,
                    comm: 0,
                    bytes: 8,
                    match_id: 4,
                    recv_task: 2,
                    queue_us: 32,
                },
            ),
            ev(
                7,
                60,
                1,
                EventData::TaskEnd {
                    id: 2,
                    label: "stencil",
                },
            ),
            ev(8, 60, 1, EventData::TaskCompleted { id: 2 }),
        ];
        let g = SpanGraph::build(&events);
        // Window is the full graph [0,100]; terminal is the blocked
        // sender (end_eff 100). Its own span runs [0,100] as runtime.
        let paths = analyze(&g);
        assert_eq!(paths[0].breakdown.total(), 100);
        // Now restrict to the consumer chain: window [0,60] excludes the
        // late completion, so the terminal is the stencil at 60.
        let p = super::walk_window(&g, &Lanes::build(&g), 0, 0, 60);
        assert_eq!(p.breakdown.compute_us, 20); // stencil [40,60]
        assert_eq!(p.breakdown.transit_us, 32); // msg [8,40]
        assert_eq!(p.breakdown.runtime_us, 8); // send [0,8]
        assert_eq!(p.breakdown.total(), 60);
    }

    #[test]
    fn main_thread_send_falls_back_to_rank_tail() {
        // stencil [0,20] on rank 0, then a task-less send (task = 0) at
        // 25, delivered at 40 on rank 1. The terminal message must chain
        // to the stencil instead of writing the whole window off as wait.
        let mut events = task(1, 0, 1, "stencil", 0, 20);
        events.push(ev(
            10,
            25,
            0,
            EventData::SendPosted {
                dst: 1,
                tag: 0,
                comm: 0,
                bytes: 8,
                eager: true,
                match_id: 9,
                task: 0,
            },
        ));
        events.push(ev(
            11,
            40,
            1,
            EventData::MsgDelivered {
                src: 0,
                tag: 0,
                comm: 0,
                bytes: 8,
                match_id: 9,
                recv_task: 0,
                queue_us: 15,
            },
        ));
        let g = SpanGraph::build(&events);
        let paths = analyze(&g);
        let p = &paths[0];
        assert_eq!(p.nodes, 2);
        assert_eq!(p.breakdown.transit_us, 15); // msg [25,40]
        assert_eq!(p.breakdown.wait_us, 5); // gap [20,25]
        assert_eq!(p.breakdown.compute_us, 20); // stencil [0,20]
        assert_eq!(p.breakdown.total(), 40);
    }

    #[test]
    fn lane_order_links_tasks_without_dep_edges() {
        // Two tasks on the same worker lane, no DepEdge recorded (e.g.
        // dropped by ring overflow). The lane edge keeps the chain alive.
        let mut events = task(1, 0, 1, "pack", 0, 10);
        events.extend(task(10, 0, 2, "stencil", 20, 30));
        let g = SpanGraph::build(&events);
        let paths = analyze(&g);
        let p = &paths[0];
        assert_eq!(p.nodes, 2);
        assert_eq!(p.breakdown.compute_us, 10); // stencil [20,30]
        assert_eq!(p.breakdown.wait_us, 10); // gap [10,20]
        assert_eq!(p.breakdown.pack_us, 10); // pack [0,10]
        assert_eq!(p.breakdown.total(), 30);
    }
}
