//! Runtime metrics: named atomic counters, gauges, and histograms.
//!
//! The registry is process-global and always constructible; handles are
//! cloned `Arc`s around atomics, so the hot path is one atomic RMW (a
//! histogram observe is three) with no lock. Layers cache their handles
//! (a registry lookup takes the map lock) and gate increments behind
//! [`crate::is_enabled`] so the disabled path stays a branch.

use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

/// A monotonically increasing counter.
#[derive(Clone, Debug, Default)]
pub struct Counter {
    inner: Arc<AtomicU64>,
}

impl Counter {
    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.inner.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.inner.load(Ordering::Relaxed)
    }
}

/// A signed gauge (current level of something).
#[derive(Clone, Debug, Default)]
pub struct Gauge {
    inner: Arc<AtomicI64>,
}

impl Gauge {
    /// Sets the level.
    #[inline]
    pub fn set(&self, v: i64) {
        self.inner.store(v, Ordering::Relaxed);
    }

    /// Adjusts the level by `delta` (may be negative).
    #[inline]
    pub fn add(&self, delta: i64) {
        self.inner.fetch_add(delta, Ordering::Relaxed);
    }

    /// Raises the level to at least `v` (high-watermark tracking).
    pub fn fetch_max(&self, v: i64) {
        self.inner.fetch_max(v, Ordering::Relaxed);
    }

    /// Current level.
    pub fn get(&self) -> i64 {
        self.inner.load(Ordering::Relaxed)
    }
}

/// Number of log₂ buckets: bucket 0 holds exact zeros, bucket `b ≥ 1`
/// holds values whose bit length is `b`, i.e. `[2^(b-1), 2^b)`. 64-bit
/// values have bit lengths 0..=64, hence 65 buckets.
const BUCKETS: usize = 65;

/// Which bucket `v` lands in: its bit length (0 for `v == 0`).
#[inline]
fn bucket_of(v: u64) -> usize {
    (u64::BITS - v.leading_zeros()) as usize
}

/// Inclusive upper bound of bucket `b` (what percentiles report).
fn bucket_hi(b: usize) -> u64 {
    if b == 0 {
        0
    } else if b >= 64 {
        u64::MAX
    } else {
        (1u64 << b) - 1
    }
}

/// Inclusive lower bound of bucket `b`.
fn bucket_lo(b: usize) -> u64 {
    if b == 0 {
        0
    } else {
        1u64 << (b - 1)
    }
}

#[derive(Debug)]
struct HistogramInner {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

/// A log₂-bucket histogram of `u64` samples (latencies in µs, sizes in
/// bytes). Observation is three relaxed RMWs; percentiles are extracted
/// from the bucket counts and therefore quantized to a bucket's upper
/// bound — exact rank selection within power-of-two resolution.
#[derive(Clone, Debug)]
pub struct Histogram {
    inner: Arc<HistogramInner>,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            inner: Arc::new(HistogramInner {
                buckets: std::array::from_fn(|_| AtomicU64::new(0)),
                count: AtomicU64::new(0),
                sum: AtomicU64::new(0),
            }),
        }
    }
}

/// Point-in-time view of a [`Histogram`], for reports and rendering.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Samples observed.
    pub count: u64,
    /// Sum of all samples (saturating).
    pub sum: u64,
    /// Exact-rank p50, quantized to the bucket upper bound.
    pub p50: u64,
    /// Exact-rank p95, quantized to the bucket upper bound.
    pub p95: u64,
    /// Exact-rank p99, quantized to the bucket upper bound.
    pub p99: u64,
    /// Non-empty buckets as `(inclusive lower bound, count)`, ascending.
    pub buckets: Vec<(u64, u64)>,
}

impl Histogram {
    /// Records one sample.
    #[inline]
    pub fn observe(&self, v: u64) {
        self.inner.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.inner.count.fetch_add(1, Ordering::Relaxed);
        self.inner.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Samples observed so far.
    pub fn count(&self) -> u64 {
        self.inner.count.load(Ordering::Relaxed)
    }

    /// Sum of all samples observed so far.
    pub fn sum(&self) -> u64 {
        self.inner.sum.load(Ordering::Relaxed)
    }

    /// Value at percentile `p` (0.0–100.0): the upper bound of the bucket
    /// containing the sample of rank `ceil(p/100 · count)`. Returns 0 for
    /// an empty histogram.
    pub fn percentile(&self, p: f64) -> u64 {
        let counts: Vec<u64> = self
            .inner
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        percentile_of(&counts, p)
    }

    /// Consistent snapshot (counts are read once) with p50/p95/p99.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let counts: Vec<u64> = self
            .inner
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let count = counts.iter().sum();
        HistogramSnapshot {
            count,
            sum: self.inner.sum.load(Ordering::Relaxed),
            p50: percentile_of(&counts, 50.0),
            p95: percentile_of(&counts, 95.0),
            p99: percentile_of(&counts, 99.0),
            buckets: counts
                .iter()
                .enumerate()
                .filter(|(_, &c)| c > 0)
                .map(|(b, &c)| (bucket_lo(b), c))
                .collect(),
        }
    }

    /// ASCII bar chart of the non-empty buckets. Safe for empty and
    /// one-sample histograms (bar widths are clamped, never divided by
    /// zero).
    pub fn render_ascii(&self) -> String {
        use std::fmt::Write;
        let snap = self.snapshot();
        if snap.count == 0 {
            return String::from("(no samples)\n");
        }
        let max = snap
            .buckets
            .iter()
            .map(|&(_, c)| c)
            .max()
            .unwrap_or(0)
            .max(1);
        let mut out = String::new();
        for &(lo, c) in &snap.buckets {
            let b = bucket_of(lo);
            // At least one mark for any non-empty bucket, at most 40.
            let width = ((c * 40).div_ceil(max)).clamp(1, 40) as usize;
            let _ = writeln!(
                out,
                "{:>20} ..= {:<20} {:>8} |{}",
                bucket_lo(b),
                bucket_hi(b),
                c,
                "#".repeat(width),
            );
        }
        let _ = writeln!(
            out,
            "count {} p50 {} p95 {} p99 {}",
            snap.count, snap.p50, snap.p95, snap.p99
        );
        out
    }

    fn reset(&self) {
        for b in &self.inner.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.inner.count.store(0, Ordering::Relaxed);
        self.inner.sum.store(0, Ordering::Relaxed);
    }
}

/// Exact-rank percentile over a bucket-count vector: the upper bound of
/// the bucket holding the `ceil(p/100 · total)`-th smallest sample.
fn percentile_of(counts: &[u64], p: f64) -> u64 {
    let total: u64 = counts.iter().sum();
    if total == 0 {
        return 0;
    }
    let rank = ((p / 100.0) * total as f64).ceil().max(1.0) as u64;
    let mut seen = 0u64;
    for (b, &c) in counts.iter().enumerate() {
        seen += c;
        if seen >= rank {
            return bucket_hi(b);
        }
    }
    bucket_hi(BUCKETS - 1)
}

enum Slot {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

/// The process-global registry of named metrics.
#[derive(Default)]
pub struct MetricsRegistry {
    slots: Mutex<BTreeMap<&'static str, Slot>>,
}

impl MetricsRegistry {
    /// Returns (creating on first use) the counter named `name`.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a gauge or histogram.
    pub fn counter(&self, name: &'static str) -> Counter {
        let mut slots = self.slots.lock();
        match slots
            .entry(name)
            .or_insert_with(|| Slot::Counter(Counter::default()))
        {
            Slot::Counter(c) => c.clone(),
            Slot::Gauge(_) => panic!("metric '{name}' is a gauge, not a counter"),
            Slot::Histogram(_) => panic!("metric '{name}' is a histogram, not a counter"),
        }
    }

    /// Returns (creating on first use) the gauge named `name`.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a counter.
    pub fn gauge(&self, name: &'static str) -> Gauge {
        let mut slots = self.slots.lock();
        match slots
            .entry(name)
            .or_insert_with(|| Slot::Gauge(Gauge::default()))
        {
            Slot::Gauge(g) => g.clone(),
            Slot::Counter(_) => panic!("metric '{name}' is a counter, not a gauge"),
            Slot::Histogram(_) => panic!("metric '{name}' is a histogram, not a gauge"),
        }
    }

    /// Returns (creating on first use) the histogram named `name`.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a counter or gauge.
    pub fn histogram(&self, name: &'static str) -> Histogram {
        let mut slots = self.slots.lock();
        match slots
            .entry(name)
            .or_insert_with(|| Slot::Histogram(Histogram::default()))
        {
            Slot::Histogram(h) => h.clone(),
            Slot::Counter(_) => panic!("metric '{name}' is a counter, not a histogram"),
            Slot::Gauge(_) => panic!("metric '{name}' is a gauge, not a histogram"),
        }
    }

    /// Snapshot of every scalar metric, sorted by name. Counter values
    /// are reported as `i64` (saturating) so one table covers both kinds;
    /// histograms contribute their sample count (their full shape comes
    /// from [`MetricsRegistry::histogram_snapshots`]).
    pub fn snapshot(&self) -> Vec<(&'static str, i64)> {
        self.slots
            .lock()
            .iter()
            .map(|(name, slot)| {
                let v = match slot {
                    Slot::Counter(c) => i64::try_from(c.get()).unwrap_or(i64::MAX),
                    Slot::Gauge(g) => g.get(),
                    Slot::Histogram(h) => i64::try_from(h.count()).unwrap_or(i64::MAX),
                };
                (*name, v)
            })
            .collect()
    }

    /// Snapshot of every histogram, sorted by name.
    pub fn histogram_snapshots(&self) -> Vec<(&'static str, HistogramSnapshot)> {
        self.slots
            .lock()
            .iter()
            .filter_map(|(name, slot)| match slot {
                Slot::Histogram(h) => Some((*name, h.snapshot())),
                _ => None,
            })
            .collect()
    }

    /// Zeroes every registered metric (test isolation between runs in one
    /// process).
    pub fn reset(&self) {
        for slot in self.slots.lock().values() {
            match slot {
                Slot::Counter(c) => c.inner.store(0, Ordering::Relaxed),
                Slot::Gauge(g) => g.set(0),
                Slot::Histogram(h) => h.reset(),
            }
        }
    }
}

/// The process-global metrics registry.
pub fn metrics() -> &'static MetricsRegistry {
    static REGISTRY: OnceLock<MetricsRegistry> = OnceLock::new();
    REGISTRY.get_or_init(MetricsRegistry::default)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_roundtrip() {
        let reg = MetricsRegistry::default();
        let c = reg.counter("test.count");
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        // Same name returns the same underlying atomic.
        assert_eq!(reg.counter("test.count").get(), 5);

        let g = reg.gauge("test.level");
        g.set(10);
        g.add(-3);
        assert_eq!(g.get(), 7);
        g.fetch_max(5);
        assert_eq!(g.get(), 7);
        g.fetch_max(11);
        assert_eq!(g.get(), 11);

        let snap = reg.snapshot();
        assert_eq!(snap, vec![("test.count", 5), ("test.level", 11)]);

        reg.reset();
        assert_eq!(reg.counter("test.count").get(), 0);
        assert_eq!(reg.gauge("test.level").get(), 0);
    }

    #[test]
    #[should_panic(expected = "is a counter")]
    fn kind_mismatch_panics() {
        let reg = MetricsRegistry::default();
        reg.counter("oops");
        reg.gauge("oops");
    }

    #[test]
    #[should_panic(expected = "is a gauge, not a histogram")]
    fn histogram_kind_mismatch_panics() {
        let reg = MetricsRegistry::default();
        reg.gauge("oops.h");
        reg.histogram("oops.h");
    }

    #[test]
    fn histogram_buckets_and_percentiles() {
        let h = Histogram::default();
        // 100 samples: 50× 1µs, 45× 100µs, 5× 10000µs.
        for _ in 0..50 {
            h.observe(1);
        }
        for _ in 0..45 {
            h.observe(100);
        }
        for _ in 0..5 {
            h.observe(10_000);
        }
        assert_eq!(h.count(), 100);
        assert_eq!(h.sum(), 50 + 45 * 100 + 5 * 10_000);
        // Rank 50 lands in the bucket of 1 → upper bound 1.
        assert_eq!(h.percentile(50.0), 1);
        // Rank 95 lands in the bucket of 100 ([64,127]) → 127.
        assert_eq!(h.percentile(95.0), 127);
        // Rank 99 lands in the bucket of 10000 ([8192,16383]) → 16383.
        assert_eq!(h.percentile(99.0), 16383);
        let snap = h.snapshot();
        assert_eq!((snap.p50, snap.p95, snap.p99), (1, 127, 16383));
        assert_eq!(snap.buckets, vec![(1, 50), (64, 45), (8192, 5)]);
    }

    #[test]
    fn histogram_zero_and_extreme_values() {
        let h = Histogram::default();
        h.observe(0);
        h.observe(u64::MAX);
        assert_eq!(h.count(), 2);
        assert_eq!(h.percentile(50.0), 0);
        assert_eq!(h.percentile(99.0), u64::MAX);
        let snap = h.snapshot();
        assert_eq!(snap.buckets.len(), 2);
        assert_eq!(snap.buckets[0], (0, 1));
    }

    #[test]
    fn histogram_render_is_safe_for_empty_and_one_sample() {
        let h = Histogram::default();
        assert_eq!(h.render_ascii(), "(no samples)\n");
        assert_eq!(h.percentile(50.0), 0, "empty percentile is 0, not a panic");
        h.observe(7);
        let rendered = h.render_ascii();
        assert!(
            rendered.contains('#'),
            "one-sample bar must be visible: {rendered}"
        );
        assert!(rendered.contains("count 1 p50 7 p95 7 p99 7"), "{rendered}");
    }

    #[test]
    fn histogram_registry_roundtrip_and_reset() {
        let reg = MetricsRegistry::default();
        let h = reg.histogram("test.lat_us");
        h.observe(5);
        h.observe(9);
        // Same name returns the same underlying histogram.
        assert_eq!(reg.histogram("test.lat_us").count(), 2);
        // Scalar snapshot carries the sample count.
        assert_eq!(reg.snapshot(), vec![("test.lat_us", 2)]);
        let hists = reg.histogram_snapshots();
        assert_eq!(hists.len(), 1);
        assert_eq!(hists[0].0, "test.lat_us");
        assert_eq!(hists[0].1.count, 2);
        reg.reset();
        assert_eq!(reg.histogram("test.lat_us").count(), 0);
        assert_eq!(
            reg.histogram("test.lat_us").snapshot(),
            HistogramSnapshot::default()
        );
    }
}
