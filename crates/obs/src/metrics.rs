//! Runtime metrics: named atomic counters and gauges.
//!
//! The registry is process-global and always constructible; handles are
//! cloned `Arc`s around a single atomic, so the hot path is one atomic
//! RMW with no lock. Layers cache their handles (a registry lookup takes
//! the map lock) and gate increments behind [`crate::is_enabled`] so the
//! disabled path stays a branch.

use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

/// A monotonically increasing counter.
#[derive(Clone, Debug, Default)]
pub struct Counter {
    inner: Arc<AtomicU64>,
}

impl Counter {
    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.inner.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.inner.load(Ordering::Relaxed)
    }
}

/// A signed gauge (current level of something).
#[derive(Clone, Debug, Default)]
pub struct Gauge {
    inner: Arc<AtomicI64>,
}

impl Gauge {
    /// Sets the level.
    #[inline]
    pub fn set(&self, v: i64) {
        self.inner.store(v, Ordering::Relaxed);
    }

    /// Adjusts the level by `delta` (may be negative).
    #[inline]
    pub fn add(&self, delta: i64) {
        self.inner.fetch_add(delta, Ordering::Relaxed);
    }

    /// Raises the level to at least `v` (high-watermark tracking).
    pub fn fetch_max(&self, v: i64) {
        self.inner.fetch_max(v, Ordering::Relaxed);
    }

    /// Current level.
    pub fn get(&self) -> i64 {
        self.inner.load(Ordering::Relaxed)
    }
}

enum Slot {
    Counter(Counter),
    Gauge(Gauge),
}

/// The process-global registry of named metrics.
#[derive(Default)]
pub struct MetricsRegistry {
    slots: Mutex<BTreeMap<&'static str, Slot>>,
}

impl MetricsRegistry {
    /// Returns (creating on first use) the counter named `name`.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a gauge.
    pub fn counter(&self, name: &'static str) -> Counter {
        let mut slots = self.slots.lock();
        match slots.entry(name).or_insert_with(|| Slot::Counter(Counter::default())) {
            Slot::Counter(c) => c.clone(),
            Slot::Gauge(_) => panic!("metric '{name}' is a gauge, not a counter"),
        }
    }

    /// Returns (creating on first use) the gauge named `name`.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a counter.
    pub fn gauge(&self, name: &'static str) -> Gauge {
        let mut slots = self.slots.lock();
        match slots.entry(name).or_insert_with(|| Slot::Gauge(Gauge::default())) {
            Slot::Gauge(g) => g.clone(),
            Slot::Counter(_) => panic!("metric '{name}' is a counter, not a gauge"),
        }
    }

    /// Snapshot of every metric, sorted by name. Counter values are
    /// reported as `i64` (saturating) so one table covers both kinds.
    pub fn snapshot(&self) -> Vec<(&'static str, i64)> {
        self.slots
            .lock()
            .iter()
            .map(|(name, slot)| {
                let v = match slot {
                    Slot::Counter(c) => i64::try_from(c.get()).unwrap_or(i64::MAX),
                    Slot::Gauge(g) => g.get(),
                };
                (*name, v)
            })
            .collect()
    }

    /// Zeroes every registered metric (test isolation between runs in one
    /// process).
    pub fn reset(&self) {
        for slot in self.slots.lock().values() {
            match slot {
                Slot::Counter(c) => c.inner.store(0, Ordering::Relaxed),
                Slot::Gauge(g) => g.set(0),
            }
        }
    }
}

/// The process-global metrics registry.
pub fn metrics() -> &'static MetricsRegistry {
    static REGISTRY: OnceLock<MetricsRegistry> = OnceLock::new();
    REGISTRY.get_or_init(MetricsRegistry::default)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_roundtrip() {
        let reg = MetricsRegistry::default();
        let c = reg.counter("test.count");
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        // Same name returns the same underlying atomic.
        assert_eq!(reg.counter("test.count").get(), 5);

        let g = reg.gauge("test.level");
        g.set(10);
        g.add(-3);
        assert_eq!(g.get(), 7);
        g.fetch_max(5);
        assert_eq!(g.get(), 7);
        g.fetch_max(11);
        assert_eq!(g.get(), 11);

        let snap = reg.snapshot();
        assert_eq!(snap, vec![("test.count", 5), ("test.level", 11)]);

        reg.reset();
        assert_eq!(reg.counter("test.count").get(), 0);
        assert_eq!(reg.gauge("test.level").get(), 0);
    }

    #[test]
    #[should_panic(expected = "is a counter")]
    fn kind_mismatch_panics() {
        let reg = MetricsRegistry::default();
        reg.counter("oops");
        reg.gauge("oops");
    }
}
