//! Machine-readable performance report and the online event collector.
//!
//! [`PerfReport::from_events`] folds one event stream through
//! [`crate::span::SpanGraph`] and [`crate::critpath::analyze`] into the
//! `miniamr-perf-report` document: per-timestep critical paths split by
//! category, per-rank busy/idle/overlap attribution, message-matching
//! totals, and the registry's latency histograms. [`PerfReport::to_json`]
//! renders it by hand (no serde in this offline workspace — same policy
//! as the Chrome exporter); [`PerfReport::human_summary`] renders the
//! terminal digest.
//!
//! [`Collector`] is the online half: a background thread that drains the
//! bus every ~2 ms (back-to-back during emit storms) so long runs do
//! not overflow the rings, optionally
//! streaming an interim report line to a JSONL file every
//! `report_interval` timesteps. [`Collector::finish`] returns the merged
//! seq-sorted event stream, which the caller can hand to *both*
//! [`crate::export_chrome`] and [`PerfReport::from_events`] — one drain,
//! two exports.

use crate::critpath::{self, TimestepPath};
use crate::event::Event;
use crate::metrics::HistogramSnapshot;
use crate::span::{RankStats, SpanGraph};
use std::fmt::Write as _;
use std::io::Write as _;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Schema identifier of the JSON document.
pub const SCHEMA: &str = "miniamr-perf-report";
/// Schema version; bump on any incompatible field change.
pub const VERSION: u32 = 1;

/// Aggregate message-matching statistics.
#[derive(Debug, Clone, Copy, Default)]
pub struct MessageStats {
    /// Messages with a send-side match id observed.
    pub matched: u64,
    /// Of those, messages whose delivery was also observed.
    pub delivered: u64,
    /// Total delivered payload bytes.
    pub bytes: u64,
}

/// The assembled report.
#[derive(Debug, Clone, Default)]
pub struct PerfReport {
    /// Ranks that produced any attributable work.
    pub ranks: u64,
    /// Events folded into the report.
    pub events: u64,
    /// Events lost to ring overflow before collection.
    pub dropped: u64,
    /// Observed wall-clock span, microseconds.
    pub wall_us: u64,
    /// Per-timestep critical paths.
    pub timesteps: Vec<TimestepPath>,
    /// Per-rank attribution.
    pub ranks_detail: Vec<RankStats>,
    /// Message totals.
    pub messages: MessageStats,
    /// Latency histograms from the metrics registry.
    pub histograms: Vec<(&'static str, HistogramSnapshot)>,
    /// Mean per-rank overlap fraction.
    pub overlap_fraction: f64,
    /// Total wait time on the critical paths, microseconds.
    pub critical_path_wait_us: u64,
}

impl PerfReport {
    /// Builds a report from a seq-sorted event stream. `dropped` is the
    /// ring-overflow count reported by the drains that produced
    /// `events`. Histograms are snapshotted from the global metrics
    /// registry at call time.
    pub fn from_events(events: &[Event], dropped: u64) -> PerfReport {
        let graph = SpanGraph::build(events);
        let timesteps = critpath::analyze(&graph);
        let ranks_detail = graph.rank_stats();
        let overlap_fraction = if ranks_detail.is_empty() {
            0.0
        } else {
            ranks_detail.iter().map(|r| r.overlap_fraction).sum::<f64>() / ranks_detail.len() as f64
        };
        let mut messages = MessageStats {
            matched: graph.messages.len() as u64,
            ..Default::default()
        };
        for m in graph.messages.values() {
            if m.delivered_us > 0 {
                messages.delivered += 1;
                messages.bytes += m.bytes;
            }
        }
        PerfReport {
            ranks: ranks_detail.len() as u64,
            events: events.len() as u64,
            dropped,
            wall_us: graph.max_us.saturating_sub(graph.min_us),
            critical_path_wait_us: timesteps.iter().map(|t| t.breakdown.wait_us).sum(),
            timesteps,
            ranks_detail,
            messages,
            histograms: crate::metrics().histogram_snapshots(),
            overlap_fraction,
        }
    }

    /// Renders the report as one compact JSON object.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(4096);
        let _ = write!(
            out,
            "{{\"schema\":\"{SCHEMA}\",\"version\":{VERSION},\"ranks\":{},\"events\":{},\"dropped\":{},\"wall_us\":{}",
            self.ranks, self.events, self.dropped, self.wall_us
        );
        out.push_str(",\"timesteps\":[");
        for (i, t) in self.timesteps.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let tstep = if t.tstep == u32::MAX {
                -1i64
            } else {
                t.tstep as i64
            };
            let b = &t.breakdown;
            let _ = write!(
                out,
                "{{\"tstep\":{tstep},\"start_us\":{},\"end_us\":{},\"wall_us\":{},\
                 \"critical_path\":{{\"total_us\":{},\"compute_us\":{},\"pack_us\":{},\
                 \"transit_us\":{},\"wait_us\":{},\"runtime_us\":{},\"nodes\":{}}}}}",
                t.start_us,
                t.end_us,
                t.end_us - t.start_us,
                b.total(),
                b.compute_us,
                b.pack_us,
                b.transit_us,
                b.wait_us,
                b.runtime_us,
                t.nodes,
            );
        }
        out.push_str("],\"ranks_detail\":[");
        for (i, r) in self.ranks_detail.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"rank\":{},\"busy_us\":{},\"idle_us\":{},\"overlap_fraction\":{},\
                 \"tasks\":{},\"waits\":{},\"wait_us\":{}}}",
                r.rank,
                r.busy_us,
                r.idle_us,
                fmt_f64(r.overlap_fraction),
                r.tasks,
                r.waits,
                r.wait_us,
            );
        }
        let _ = write!(
            out,
            "],\"messages\":{{\"matched\":{},\"delivered\":{},\"bytes\":{}}}",
            self.messages.matched, self.messages.delivered, self.messages.bytes
        );
        out.push_str(",\"histograms\":{");
        for (i, (name, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\"{}\":{{\"count\":{},\"sum\":{},\"p50\":{},\"p95\":{},\"p99\":{},\"buckets\":[",
                esc(name),
                h.count,
                h.sum,
                h.p50,
                h.p95,
                h.p99
            );
            for (j, (lo, c)) in h.buckets.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(out, "[{lo},{c}]");
            }
            out.push_str("]}");
        }
        let _ = write!(
            out,
            "}},\"overlap_fraction\":{},\"critical_path_wait_us\":{}}}",
            fmt_f64(self.overlap_fraction),
            self.critical_path_wait_us
        );
        debug_assert!(
            crate::json::validate(&out).is_ok(),
            "report JSON must be valid"
        );
        out
    }

    /// Renders the terminal digest.
    pub fn human_summary(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "perf report: {} rank(s), {} events ({} dropped), wall {:.1} ms",
            self.ranks,
            self.events,
            self.dropped,
            self.wall_us as f64 / 1e3
        );
        let mut total = crate::critpath::Breakdown::default();
        for t in &self.timesteps {
            total.compute_us += t.breakdown.compute_us;
            total.pack_us += t.breakdown.pack_us;
            total.transit_us += t.breakdown.transit_us;
            total.wait_us += t.breakdown.wait_us;
            total.runtime_us += t.breakdown.runtime_us;
        }
        let sum = total.total().max(1) as f64;
        let _ = writeln!(
            out,
            "  critical path ({} window(s)): compute {:.1}% pack {:.1}% transit {:.1}% wait {:.1}% runtime {:.1}%",
            self.timesteps.len(),
            100.0 * total.compute_us as f64 / sum,
            100.0 * total.pack_us as f64 / sum,
            100.0 * total.transit_us as f64 / sum,
            100.0 * total.wait_us as f64 / sum,
            100.0 * total.runtime_us as f64 / sum,
        );
        let _ = writeln!(
            out,
            "  overlap fraction (mean over ranks): {:.3}; messages {}/{} delivered, {} bytes",
            self.overlap_fraction,
            self.messages.delivered,
            self.messages.matched,
            self.messages.bytes
        );
        for r in &self.ranks_detail {
            let _ = writeln!(
                out,
                "  rank {}: busy {:.1} ms idle {:.1} ms overlap {:.3} tasks {} waits {} ({:.1} ms)",
                r.rank,
                r.busy_us as f64 / 1e3,
                r.idle_us as f64 / 1e3,
                r.overlap_fraction,
                r.tasks,
                r.waits,
                r.wait_us as f64 / 1e3,
            );
        }
        for (name, h) in &self.histograms {
            if h.count > 0 {
                let _ = writeln!(
                    out,
                    "  {}: count {} p50 {} p95 {} p99 {} (us)",
                    name, h.count, h.p50, h.p95, h.p99
                );
            }
        }
        out
    }
}

/// Finite float as a JSON number (6 decimal places; NaN/inf collapse to
/// 0 — they cannot occur from the fraction math but JSON forbids them).
fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.6}")
    } else {
        String::from("0")
    }
}

/// Minimal string escape for JSON keys (metric names are identifiers,
/// but quoting/control bytes must never corrupt the document).
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Online event collector: drains the bus periodically on a background
/// thread so week-long rings never overflow, and optionally streams an
/// interim [`PerfReport`] line to a JSONL file every `report_interval`
/// rank-0 timesteps.
pub struct Collector {
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<(Vec<Event>, u64)>>,
}

impl Collector {
    /// Starts collecting from `bus`. When `metrics_jsonl` is set, an
    /// interim report is appended to the file each time rank 0 enters a
    /// timestep that is a multiple of `report_interval` (clamped to at
    /// least 1).
    pub fn start(
        bus: &'static crate::EventBus,
        metrics_jsonl: Option<PathBuf>,
        report_interval: u32,
    ) -> Collector {
        let stop = Arc::new(AtomicBool::new(false));
        let stop_in = Arc::clone(&stop);
        let interval = report_interval.max(1) as u64;
        let handle = std::thread::Builder::new()
            .name("obs-perf-collector".into())
            .spawn(move || {
                let mut events: Vec<Event> = Vec::new();
                let mut dropped = 0u64;
                let mut next_report = interval;
                let mut jsonl = metrics_jsonl;
                loop {
                    let stopping = stop_in.load(Ordering::Acquire);
                    // Unsorted drain: sorting here would stall the poll
                    // loop long enough for emit storms to overflow the
                    // rings. `finish` (and interim reports) sort once.
                    let d = bus.drain_unsorted();
                    dropped += d.dropped;
                    let drained_now = d.events.len();
                    events.extend(d.events);
                    if let Some(path) = &jsonl {
                        // Stream an interim line when rank 0 crosses the
                        // next multiple of the interval (its mark fires at
                        // the top of the timestep, so tstep >= k·interval
                        // means k·interval timesteps have completed).
                        let max_ts = events
                            .iter()
                            .filter(|e| e.rank == 0)
                            .filter_map(|e| match e.data {
                                crate::EventData::TimestepMark { tstep } => Some(tstep as u64),
                                _ => None,
                            })
                            .max();
                        if max_ts.is_some_and(|t| t >= next_report) {
                            while max_ts.is_some_and(|t| t >= next_report) {
                                next_report += interval;
                            }
                            let mut sorted = events.clone();
                            sorted.sort_by_key(|e| e.seq);
                            let line = PerfReport::from_events(&sorted, dropped).to_json();
                            if let Err(e) = append_line(path, &line) {
                                eprintln!("obs: metrics_jsonl write failed: {e}");
                                jsonl = None;
                            }
                        }
                    }
                    if stopping {
                        // One last drain already ran above with the stop
                        // flag set, so nothing emitted before the flag can
                        // be missed.
                        return (events, dropped);
                    }
                    // Adaptive cadence: spawn storms (DepEdge bursts) can
                    // emit faster than a slow fixed poll empties the
                    // rings. When a drain comes back substantially full,
                    // go straight back for more; only idle when the bus
                    // is quiet (an empty-ish drain is 32 uncontended
                    // mutex grabs, so a 2 ms cadence costs nothing).
                    if drained_now < 4096 {
                        std::thread::sleep(Duration::from_millis(2));
                    }
                }
            })
            .expect("spawn obs-perf-collector");
        Collector {
            stop,
            handle: Some(handle),
        }
    }

    /// Stops the thread, performs the final drain, and returns the
    /// merged seq-sorted events plus the total ring-overflow count.
    pub fn finish(mut self) -> (Vec<Event>, u64) {
        self.stop.store(true, Ordering::Release);
        let (mut events, dropped) = self
            .handle
            .take()
            .expect("finish called once")
            .join()
            .unwrap_or_default();
        events.sort_by_key(|e| e.seq);
        (events, dropped)
    }
}

impl Drop for Collector {
    fn drop(&mut self) {
        if let Some(handle) = self.handle.take() {
            self.stop.store(true, Ordering::Release);
            let _ = handle.join();
        }
    }
}

fn append_line(path: &std::path::Path, line: &str) -> std::io::Result<()> {
    let mut f = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)?;
    f.write_all(line.as_bytes())?;
    f.write_all(b"\n")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventData;

    fn ev(seq: u64, t_us: u64, rank: u32, data: EventData) -> Event {
        Event {
            seq,
            t_us,
            rank,
            worker: 0,
            data,
        }
    }

    fn sample_events() -> Vec<Event> {
        vec![
            ev(1, 0, 0, EventData::TimestepMark { tstep: 0 }),
            ev(
                2,
                5,
                0,
                EventData::TaskStart {
                    id: 1,
                    label: "pack",
                },
            ),
            ev(
                3,
                20,
                0,
                EventData::TaskEnd {
                    id: 1,
                    label: "pack",
                },
            ),
            ev(4, 20, 0, EventData::TaskCompleted { id: 1 }),
            ev(
                5,
                18,
                0,
                EventData::SendPosted {
                    dst: 1,
                    tag: 3,
                    comm: 0,
                    bytes: 256,
                    eager: false,
                    match_id: 11,
                    task: 1,
                },
            ),
            ev(
                6,
                40,
                1,
                EventData::TaskStart {
                    id: 2,
                    label: "stencil",
                },
            ),
            ev(
                7,
                40,
                1,
                EventData::MsgDelivered {
                    src: 0,
                    tag: 3,
                    comm: 0,
                    bytes: 256,
                    match_id: 11,
                    recv_task: 2,
                    queue_us: 22,
                },
            ),
            ev(
                8,
                70,
                1,
                EventData::TaskEnd {
                    id: 2,
                    label: "stencil",
                },
            ),
            ev(9, 70, 1, EventData::TaskCompleted { id: 2 }),
            ev(
                10,
                70,
                1,
                EventData::WaitSpan {
                    kind: "taskwait",
                    start_us: 60,
                    end_us: 70,
                },
            ),
        ]
    }

    #[test]
    fn report_json_is_valid_and_exact() {
        let report = PerfReport::from_events(&sample_events(), 0);
        assert_eq!(report.ranks, 2);
        assert_eq!(report.messages.matched, 1);
        assert_eq!(report.messages.delivered, 1);
        assert_eq!(report.messages.bytes, 256);
        // Category sums equal window wall-clock exactly.
        for t in &report.timesteps {
            assert_eq!(t.breakdown.total(), t.end_us - t.start_us);
        }
        let json = report.to_json();
        crate::json::validate(&json).expect("valid JSON");
        assert!(json.contains("\"schema\":\"miniamr-perf-report\""));
        assert!(json.contains("\"version\":1"));
        assert!(json.contains("\"critical_path\""));
        assert!(json.contains("\"transit_us\":22"));
    }

    #[test]
    fn empty_report_is_valid() {
        let report = PerfReport::from_events(&[], 0);
        assert_eq!(report.ranks, 0);
        assert_eq!(report.wall_us, 0);
        let json = report.to_json();
        crate::json::validate(&json).expect("valid JSON");
        let summary = report.human_summary();
        assert!(summary.contains("0 events"), "{summary}");
    }

    #[test]
    fn human_summary_mentions_categories_and_ranks() {
        let s = PerfReport::from_events(&sample_events(), 2).human_summary();
        assert!(s.contains("critical path"), "{s}");
        assert!(s.contains("rank 0:"), "{s}");
        assert!(s.contains("rank 1:"), "{s}");
        assert!(s.contains("2 dropped"), "{s}");
    }

    #[test]
    fn fmt_f64_rejects_non_finite() {
        assert_eq!(fmt_f64(f64::NAN), "0");
        assert_eq!(fmt_f64(0.5), "0.500000");
    }

    #[test]
    fn esc_handles_quotes_and_controls() {
        assert_eq!(esc("a\"b\\c\u{1}"), "a\\\"b\\\\c\\u0001");
    }

    #[test]
    fn collector_accumulates_and_streams() {
        let bus = crate::enable();
        // Unique-ish temp path from the pid (tests may run concurrently
        // in one process but this test runs once per process).
        let path = std::env::temp_dir().join(format!("obs-report-{}.jsonl", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let collector = Collector::start(bus, Some(path.clone()), 1);
        bus.emit_for_rank(0, EventData::TimestepMark { tstep: 0 });
        bus.emit_for_rank(
            0,
            EventData::TaskStart {
                id: 900_001,
                label: "stencil",
            },
        );
        bus.emit_for_rank(
            0,
            EventData::TaskEnd {
                id: 900_001,
                label: "stencil",
            },
        );
        bus.emit_for_rank(0, EventData::TaskCompleted { id: 900_001 });
        bus.emit_for_rank(0, EventData::TimestepMark { tstep: 1 });
        // Give the 20 ms poll loop a couple of cycles to stream.
        std::thread::sleep(Duration::from_millis(120));
        let (events, _dropped) = collector.finish();
        assert!(events.len() >= 5, "collected {}", events.len());
        assert!(events.windows(2).all(|w| w[0].seq <= w[1].seq));
        let body = std::fs::read_to_string(&path).expect("jsonl written");
        let lines: Vec<&str> = body.lines().collect();
        assert!(!lines.is_empty(), "at least one interim report line");
        for line in lines {
            crate::json::validate(line).expect("each line is valid JSON");
            assert!(line.contains("miniamr-perf-report"));
        }
        let _ = std::fs::remove_file(&path);
    }
}
