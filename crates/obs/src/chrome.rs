//! Chrome `trace_event` JSON exporter.
//!
//! Produces one Perfetto-loadable timeline merging every rank: processes
//! are ranks (`pid` = rank), threads are lanes within a rank (`tid` 0 =
//! the rank's main thread, `tid` 1.. = task workers, a high `tid` = the
//! delivery/"network" lane). Task executions and phase spans become
//! duration (`"ph":"X"`) slices, message/lifecycle transitions become
//! instants (`"ph":"i"`), and derived counter tracks (`"ph":"C"`) plot
//! tasks ready/running, requests in flight, and bytes queued — the same
//! quantities the paper reads off its Extrae/Paraver timelines.

use crate::event::{Event, EventData, LANE_MAIN, LANE_NET, UNKNOWN_RANK};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write;

/// `tid` used for the delivery/"network" lane.
const TID_NET: u32 = 999;
/// `tid` used for events with no lane attribution.
const TID_OTHER: u32 = 998;

fn tid_of(worker: u32) -> u32 {
    match worker {
        LANE_MAIN => 0,
        LANE_NET => TID_NET,
        w => w.saturating_add(1).min(TID_OTHER - 1),
    }
}

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

struct Emitter {
    out: String,
    first: bool,
}

impl Emitter {
    fn new() -> Emitter {
        Emitter {
            out: String::from("{\"traceEvents\":[\n"),
            first: true,
        }
    }

    fn push(&mut self, record: String) {
        if !self.first {
            self.out.push_str(",\n");
        }
        self.first = false;
        self.out.push_str(&record);
    }

    fn meta(&mut self, name: &str, pid: u32, tid: Option<u32>, value: &str) {
        let tid_field = tid.map(|t| format!(",\"tid\":{t}")).unwrap_or_default();
        self.push(format!(
            "{{\"name\":\"{}\",\"ph\":\"M\",\"pid\":{pid}{tid_field},\"args\":{{\"name\":\"{}\"}}}}",
            esc(name),
            esc(value)
        ));
    }

    fn slice(&mut self, name: &str, pid: u32, tid: u32, ts: u64, dur: u64, args: &str) {
        self.push(format!(
            "{{\"name\":\"{}\",\"ph\":\"X\",\"pid\":{pid},\"tid\":{tid},\"ts\":{ts},\"dur\":{dur},\"args\":{{{args}}}}}",
            esc(name)
        ));
    }

    fn instant(&mut self, name: &str, pid: u32, tid: u32, ts: u64, args: &str) {
        self.push(format!(
            "{{\"name\":\"{}\",\"ph\":\"i\",\"s\":\"t\",\"pid\":{pid},\"tid\":{tid},\"ts\":{ts},\"args\":{{{args}}}}}",
            esc(name)
        ));
    }

    fn counter(&mut self, name: &str, pid: u32, ts: u64, series: &str) {
        self.push(format!(
            "{{\"name\":\"{}\",\"ph\":\"C\",\"pid\":{pid},\"tid\":0,\"ts\":{ts},\"args\":{{{series}}}}}",
            esc(name)
        ));
    }

    /// Perfetto flow arrow start (`"ph":"s"`) at a send-post site.
    fn flow_start(&mut self, id: u64, pid: u32, tid: u32, ts: u64) {
        self.push(format!(
            "{{\"name\":\"msg\",\"cat\":\"msg\",\"ph\":\"s\",\"id\":{id},\"pid\":{pid},\"tid\":{tid},\"ts\":{ts}}}"
        ));
    }

    /// Perfetto flow arrow finish (`"ph":"f"`, binding to the enclosing
    /// slice's end) at the matching delivery site.
    fn flow_finish(&mut self, id: u64, pid: u32, tid: u32, ts: u64) {
        self.push(format!(
            "{{\"name\":\"msg\",\"cat\":\"msg\",\"ph\":\"f\",\"bp\":\"e\",\"id\":{id},\"pid\":{pid},\"tid\":{tid},\"ts\":{ts}}}"
        ));
    }

    fn finish(mut self) -> String {
        self.out.push_str("\n]}\n");
        self.out
    }
}

fn norm_rank(rank: u32) -> u32 {
    // Perfetto groups by pid; fold unattributed events into a synthetic
    // high pid rather than u32::MAX (which some viewers render poorly).
    if rank == UNKNOWN_RANK {
        9999
    } else {
        rank
    }
}

/// Renders `events` (any order; they are sorted internally) as a Chrome
/// `trace_event` JSON document.
pub fn export_chrome(events: &[Event]) -> String {
    let mut events: Vec<&Event> = events.iter().collect();
    events.sort_by_key(|e| (e.t_us, e.seq));

    let mut em = Emitter::new();

    // Process/thread metadata first: one process per rank, named lanes.
    let mut lanes: BTreeSet<(u32, u32)> = BTreeSet::new();
    for e in &events {
        lanes.insert((norm_rank(e.rank), tid_of(e.worker)));
    }
    let ranks: BTreeSet<u32> = lanes.iter().map(|&(r, _)| r).collect();
    for &r in &ranks {
        let pname = if r == 9999 {
            "unattributed".to_string()
        } else {
            format!("rank {r}")
        };
        em.meta("process_name", r, None, &pname);
    }
    for &(r, tid) in &lanes {
        let tname = match tid {
            0 => "main".to_string(),
            TID_NET => "net".to_string(),
            t => format!("worker {}", t - 1),
        };
        em.meta("thread_name", r, Some(tid), &tname);
    }

    // Derived counter state, per rank.
    #[derive(Default, Clone)]
    struct RankCounters {
        ready: i64,
        running: i64,
    }
    let mut counters: BTreeMap<u32, RankCounters> = BTreeMap::new();
    // Open task executions: (rank, worker, task id) -> (start ts, label).
    let mut open: BTreeMap<(u32, u32, u64), (u64, &'static str)> = BTreeMap::new();

    for e in &events {
        let pid = norm_rank(e.rank);
        let tid = tid_of(e.worker);
        let ts = e.t_us;
        match &e.data {
            EventData::TaskCreated {
                id,
                label,
                preds,
                replayed,
            } => {
                em.instant(
                    "task_created",
                    pid,
                    tid,
                    ts,
                    &format!(
                        "\"id\":{id},\"label\":\"{}\",\"preds\":{preds},\"replayed\":{replayed}",
                        esc(label)
                    ),
                );
            }
            EventData::TaskReady { id } => {
                em.instant("task_ready", pid, tid, ts, &format!("\"id\":{id}"));
                let c = counters.entry(pid).or_default();
                c.ready += 1;
                let ready = c.ready;
                em.counter("tasks_ready", pid, ts, &format!("\"ready\":{ready}"));
            }
            EventData::TaskStart { id, label } => {
                open.insert((pid, tid, *id), (ts, label));
                let c = counters.entry(pid).or_default();
                c.ready = (c.ready - 1).max(0);
                c.running += 1;
                let (ready, running) = (c.ready, c.running);
                em.counter("tasks_ready", pid, ts, &format!("\"ready\":{ready}"));
                em.counter("tasks_running", pid, ts, &format!("\"running\":{running}"));
            }
            EventData::TaskEnd { id, label } => {
                let (start, label) = open.remove(&(pid, tid, *id)).unwrap_or((ts, *label));
                em.slice(
                    label,
                    pid,
                    tid,
                    start,
                    ts.saturating_sub(start),
                    &format!("\"id\":{id}"),
                );
                let c = counters.entry(pid).or_default();
                c.running = (c.running - 1).max(0);
                let running = c.running;
                em.counter("tasks_running", pid, ts, &format!("\"running\":{running}"));
            }
            EventData::TaskBlocked { id, holds } => {
                em.instant(
                    "task_blocked",
                    pid,
                    tid,
                    ts,
                    &format!("\"id\":{id},\"holds\":{holds}"),
                );
            }
            EventData::TaskCompleted { id } => {
                em.instant("task_completed", pid, tid, ts, &format!("\"id\":{id}"));
            }
            EventData::DepEdge { pred, succ } => {
                em.instant(
                    "dep_edge",
                    pid,
                    tid,
                    ts,
                    &format!("\"pred\":{pred},\"succ\":{succ}"),
                );
            }
            EventData::HoldAcquire { task } => {
                em.instant("hold_acquire", pid, tid, ts, &format!("\"task\":{task}"));
            }
            EventData::HoldRelease { task } => {
                em.instant("hold_release", pid, tid, ts, &format!("\"task\":{task}"));
            }
            EventData::SendPosted {
                dst,
                tag,
                comm,
                bytes,
                eager,
                match_id,
                task,
            } => {
                em.instant(
                    "send_posted",
                    pid,
                    tid,
                    ts,
                    &format!("\"dst\":{dst},\"tag\":{tag},\"comm\":{comm},\"bytes\":{bytes},\"eager\":{eager},\"match_id\":{match_id},\"task\":{task}"),
                );
                if *match_id > 0 {
                    em.flow_start(*match_id, pid, tid, ts);
                }
            }
            EventData::RecvPosted {
                src,
                tag,
                comm,
                task,
            } => {
                em.instant(
                    "recv_posted",
                    pid,
                    tid,
                    ts,
                    &format!("\"src\":{src},\"tag\":{tag},\"comm\":{comm},\"task\":{task}"),
                );
            }
            EventData::MsgMatched {
                src,
                tag,
                comm,
                bytes,
                at_send,
                match_id,
                recv_task,
            } => {
                em.instant(
                    "msg_matched",
                    pid,
                    tid,
                    ts,
                    &format!("\"src\":{src},\"tag\":{tag},\"comm\":{comm},\"bytes\":{bytes},\"at_send\":{at_send},\"match_id\":{match_id},\"recv_task\":{recv_task}"),
                );
            }
            EventData::MsgDelivered {
                src,
                tag,
                comm,
                bytes,
                match_id,
                recv_task,
                queue_us,
            } => {
                em.instant(
                    "msg_delivered",
                    pid,
                    tid,
                    ts,
                    &format!("\"src\":{src},\"tag\":{tag},\"comm\":{comm},\"bytes\":{bytes},\"match_id\":{match_id},\"recv_task\":{recv_task},\"queue_us\":{queue_us}"),
                );
                if *match_id > 0 {
                    em.flow_finish(*match_id, pid, tid, ts);
                }
            }
            EventData::WaitanyWake { index } => {
                em.instant("waitany_wake", pid, tid, ts, &format!("\"index\":{index}"));
            }
            EventData::QueueDepth {
                mailbox,
                msgs,
                recvs,
                bytes,
            } => {
                let in_flight = u64::from(*msgs) + u64::from(*recvs);
                em.counter(
                    "requests_in_flight",
                    *mailbox,
                    ts,
                    &format!("\"in_flight\":{in_flight}"),
                );
                em.counter("bytes_queued", *mailbox, ts, &format!("\"bytes\":{bytes}"));
            }
            EventData::FabricDepth {
                node,
                up_flows,
                down_flows,
                queued_bytes,
            } => {
                // One counter process per fabric node would collide with
                // rank pids; plot on the emitting rank's process instead,
                // with the node index in the series name.
                let flows = u64::from(*up_flows) + u64::from(*down_flows);
                em.counter(
                    &format!("fabric_flows_node{node}"),
                    pid,
                    ts,
                    &format!("\"flows\":{flows}"),
                );
                em.counter(
                    &format!("fabric_uplink_bytes_node{node}"),
                    pid,
                    ts,
                    &format!("\"bytes\":{queued_bytes}"),
                );
            }
            EventData::SanViolation {
                kind,
                task,
                obj,
                detail,
            } => {
                em.instant(
                    "san_violation",
                    pid,
                    tid,
                    ts,
                    &format!(
                        "\"kind\":\"{}\",\"task\":{task},\"obj\":{obj},\"detail\":\"{}\"",
                        esc(kind),
                        esc(detail)
                    ),
                );
            }
            EventData::FaultInjected {
                kind,
                src,
                dst,
                tag,
                seq,
            } => {
                em.instant(
                    "fault_injected",
                    pid,
                    tid,
                    ts,
                    &format!(
                        "\"kind\":\"{}\",\"src\":{src},\"dst\":{dst},\"tag\":{tag},\"seq\":{seq}",
                        esc(kind)
                    ),
                );
            }
            EventData::Retransmit {
                src,
                dst,
                tag,
                seq,
                attempt,
            } => {
                em.instant(
                    "retransmit",
                    pid,
                    tid,
                    ts,
                    &format!("\"src\":{src},\"dst\":{dst},\"tag\":{tag},\"seq\":{seq},\"attempt\":{attempt}"),
                );
            }
            EventData::CheckpointTaken {
                rank,
                tstep,
                stage,
                blocks,
                bytes,
            } => {
                em.instant(
                    "checkpoint_taken",
                    pid,
                    tid,
                    ts,
                    &format!(
                        "\"rank\":{rank},\"tstep\":{tstep},\"stage\":{stage},\"blocks\":{blocks},\"bytes\":{bytes}"
                    ),
                );
            }
            EventData::RankRecovered { peer, retries } => {
                em.instant(
                    "rank_recovered",
                    pid,
                    tid,
                    ts,
                    &format!("\"peer\":{peer},\"retries\":{retries}"),
                );
            }
            EventData::TraceMark { kind, key, tasks } => {
                em.instant(
                    &format!("trace_{kind}"),
                    pid,
                    tid,
                    ts,
                    &format!("\"key\":{key},\"tasks\":{tasks}"),
                );
            }
            EventData::Span {
                kind,
                start_us,
                end_us,
            } => {
                em.slice(
                    kind,
                    pid,
                    tid,
                    *start_us,
                    end_us.saturating_sub(*start_us),
                    "",
                );
            }
            EventData::WaitSpan {
                kind,
                start_us,
                end_us,
            } => {
                em.slice(
                    &format!("wait:{kind}"),
                    pid,
                    tid,
                    *start_us,
                    end_us.saturating_sub(*start_us),
                    "\"wait\":true",
                );
            }
            EventData::TimestepMark { tstep } => {
                em.instant("timestep", pid, tid, ts, &format!("\"tstep\":{tstep}"));
            }
        }
    }

    // Close any task execution that never saw its end event (ring
    // overflow or a crash mid-task) so the slice is still visible.
    let mut leftovers: Vec<_> = open.into_iter().collect();
    leftovers.sort_unstable_by_key(|&((pid, tid, id), _)| (pid, tid, id));
    let horizon = events.last().map(|e| e.t_us).unwrap_or(0);
    for ((pid, tid, id), (start, label)) in leftovers {
        em.slice(
            label,
            pid,
            tid,
            start,
            horizon.saturating_sub(start),
            &format!("\"id\":{id},\"truncated\":true"),
        );
    }

    em.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Event;

    fn ev(seq: u64, t_us: u64, rank: u32, worker: u32, data: EventData) -> Event {
        Event {
            seq,
            t_us,
            rank,
            worker,
            data,
        }
    }

    #[test]
    fn export_is_valid_json_with_processes_and_counters() {
        let events = vec![
            ev(
                0,
                10,
                0,
                LANE_MAIN,
                EventData::TaskCreated {
                    id: 1,
                    label: "stencil",
                    preds: 0,
                    replayed: false,
                },
            ),
            ev(
                0,
                11,
                0,
                LANE_MAIN,
                EventData::TraceMark {
                    kind: "hit",
                    key: 0,
                    tasks: 1,
                },
            ),
            ev(1, 12, 0, 0, EventData::TaskReady { id: 1 }),
            ev(
                2,
                15,
                0,
                0,
                EventData::TaskStart {
                    id: 1,
                    label: "stencil",
                },
            ),
            ev(
                3,
                40,
                0,
                0,
                EventData::TaskEnd {
                    id: 1,
                    label: "stencil",
                },
            ),
            ev(
                4,
                41,
                1,
                LANE_MAIN,
                EventData::SendPosted {
                    dst: 0,
                    tag: 7,
                    comm: 0,
                    bytes: 64,
                    eager: true,
                    match_id: 5,
                    task: 0,
                },
            ),
            ev(
                5,
                42,
                0,
                LANE_NET,
                EventData::MsgDelivered {
                    src: 1,
                    tag: 7,
                    comm: 0,
                    bytes: 64,
                    match_id: 5,
                    recv_task: 0,
                    queue_us: 1,
                },
            ),
            ev(
                6,
                43,
                1,
                LANE_MAIN,
                EventData::QueueDepth {
                    mailbox: 1,
                    msgs: 2,
                    recvs: 1,
                    bytes: 128,
                },
            ),
        ];
        let json = export_chrome(&events);
        crate::json::validate(&json).expect("exporter must emit valid JSON");
        assert!(json.contains("\"pid\":0"));
        assert!(json.contains("\"pid\":1"));
        assert!(
            json.contains("\"ph\":\"X\""),
            "task execution slice missing"
        );
        assert!(json.contains("requests_in_flight"));
        assert!(json.contains("bytes_queued"));
        assert!(
            json.contains("\"name\":\"net\""),
            "delivery lane metadata missing"
        );
        assert!(json.contains("\"ph\":\"s\""), "flow arrow start missing");
        assert!(json.contains("\"ph\":\"f\""), "flow arrow finish missing");
    }

    #[test]
    fn unattributed_send_emits_no_flow_arrow() {
        let events = vec![
            ev(
                0,
                1,
                0,
                LANE_MAIN,
                EventData::SendPosted {
                    dst: 1,
                    tag: 0,
                    comm: 0,
                    bytes: 8,
                    eager: true,
                    match_id: 0,
                    task: 0,
                },
            ),
            ev(
                1,
                2,
                1,
                LANE_NET,
                EventData::MsgDelivered {
                    src: 0,
                    tag: 0,
                    comm: 0,
                    bytes: 8,
                    match_id: 0,
                    recv_task: 0,
                    queue_us: 0,
                },
            ),
        ];
        let json = export_chrome(&events);
        crate::json::validate(&json).unwrap();
        assert!(
            !json.contains("\"ph\":\"s\""),
            "match_id 0 must not start a flow"
        );
        assert!(
            !json.contains("\"ph\":\"f\""),
            "match_id 0 must not finish a flow"
        );
    }

    #[test]
    fn wait_span_and_timestep_render() {
        let events = vec![
            ev(0, 0, 0, LANE_MAIN, EventData::TimestepMark { tstep: 3 }),
            ev(
                1,
                10,
                0,
                0,
                EventData::WaitSpan {
                    kind: "waitany",
                    start_us: 2,
                    end_us: 10,
                },
            ),
        ];
        let json = export_chrome(&events);
        crate::json::validate(&json).unwrap();
        assert!(json.contains("wait:waitany"));
        assert!(json.contains("\"tstep\":3"));
    }

    #[test]
    fn unpaired_task_start_still_produces_slice() {
        let events = vec![
            ev(
                0,
                5,
                0,
                0,
                EventData::TaskStart {
                    id: 9,
                    label: "pack",
                },
            ),
            ev(1, 30, 0, 0, EventData::TaskReady { id: 10 }),
        ];
        let json = export_chrome(&events);
        crate::json::validate(&json).unwrap();
        assert!(json.contains("\"truncated\":true"));
    }

    #[test]
    fn merged_ranks_sorted_by_time() {
        // Events deliberately passed out of order.
        let events = vec![
            ev(5, 100, 1, 0, EventData::TaskReady { id: 2 }),
            ev(2, 50, 0, 0, EventData::TaskReady { id: 1 }),
        ];
        let json = export_chrome(&events);
        crate::json::validate(&json).unwrap();
        let first = json.find("\"ts\":50").expect("early event present");
        let second = json.find("\"ts\":100").expect("late event present");
        assert!(first < second, "events must be emitted in timestamp order");
    }
}
