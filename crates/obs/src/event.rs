//! Event vocabulary of the bus.
//!
//! One enum covers every layer: task lifecycle (taskrt), message
//! lifecycle (vmpi), event holds (tampi via taskrt), and coarse phase
//! spans (the `core` trace recorder). Variants carry only `Copy` payloads
//! plus `&'static str` labels so an [`Event`] is small and cheap to move
//! through the ring buffers.

/// Lane id of a rank's main thread (outside any task worker).
pub const LANE_MAIN: u32 = u32::MAX;
/// Lane id of the transport's delivery thread ("the network").
pub const LANE_NET: u32 = u32::MAX - 1;
/// Rank id used when the emitting thread has no rank context.
pub const UNKNOWN_RANK: u32 = u32::MAX;

/// One structured event, stamped with a global sequence number and a
/// microsecond timestamp relative to the bus epoch.
#[derive(Debug, Clone)]
pub struct Event {
    /// Global total-order sequence number (the watchdog's progress
    /// signal).
    pub seq: u64,
    /// Microseconds since the bus epoch.
    pub t_us: u64,
    /// Rank the event belongs to ([`UNKNOWN_RANK`] when not attributable).
    pub rank: u32,
    /// Worker lane within the rank ([`LANE_MAIN`], [`LANE_NET`], or a
    /// worker index).
    pub worker: u32,
    /// What happened.
    pub data: EventData,
}

/// The event payload: one variant per instrumented transition.
#[derive(Debug, Clone)]
pub enum EventData {
    /// taskrt: a task was spawned with `preds` unreleased predecessors.
    TaskCreated {
        /// Task id.
        id: u64,
        /// Task label.
        label: &'static str,
        /// Dependency edges created at registration.
        preds: u32,
        /// True when the edges were installed from a cached task trace
        /// instead of fresh claim-table analysis.
        replayed: bool,
    },
    /// taskrt: a task's last predecessor released; it is now schedulable.
    TaskReady {
        /// Task id.
        id: u64,
    },
    /// taskrt: a worker started executing the task body.
    TaskStart {
        /// Task id.
        id: u64,
        /// Task label.
        label: &'static str,
    },
    /// taskrt: the task body returned.
    TaskEnd {
        /// Task id.
        id: u64,
        /// Task label.
        label: &'static str,
    },
    /// taskrt: the body finished but `holds` event holds are still
    /// outstanding (blocked-on-event, the TAMPI_Iwait state).
    TaskBlocked {
        /// Task id.
        id: u64,
        /// Outstanding event holds.
        holds: u32,
    },
    /// taskrt: the task released its dependencies (fully complete).
    TaskCompleted {
        /// Task id.
        id: u64,
    },
    /// taskrt: a dependency edge `pred → succ` was created at spawn.
    DepEdge {
        /// Predecessor task id.
        pred: u64,
        /// Successor task id.
        succ: u64,
    },
    /// taskrt: an event hold was acquired on a task (deferred release).
    HoldAcquire {
        /// Task id the hold defers.
        task: u64,
    },
    /// taskrt: an event hold was dropped.
    HoldRelease {
        /// Task id the hold deferred.
        task: u64,
    },
    /// vmpi: a send was posted. `eager` marks sends that complete
    /// immediately (payload below the eager threshold or self-send);
    /// rendezvous sends complete when the transfer drains.
    SendPosted {
        /// Destination rank (communicator-local).
        dst: u32,
        /// Message tag.
        tag: i32,
        /// Communicator id.
        comm: u64,
        /// Payload size in bytes.
        bytes: u64,
        /// Eager (true) vs rendezvous (false) protocol.
        eager: bool,
        /// Process-unique match id tying this send to its eventual
        /// delivery (0 = unattributed; allocated only while tracing).
        match_id: u64,
        /// Task that posted the send (0 = outside any task).
        task: u64,
    },
    /// vmpi: a receive was posted.
    RecvPosted {
        /// Source rank, or the ANY_SOURCE wildcard (-1).
        src: i32,
        /// Message tag, or the ANY_TAG wildcard (-2).
        tag: i32,
        /// Communicator id.
        comm: u64,
        /// Task that posted the receive (0 = outside any task).
        task: u64,
    },
    /// vmpi: an envelope paired with a posted receive. `at_send` is true
    /// when the receive was already posted at send time.
    MsgMatched {
        /// Sending rank (communicator-local).
        src: u32,
        /// Message tag.
        tag: i32,
        /// Communicator id.
        comm: u64,
        /// Payload size in bytes.
        bytes: u64,
        /// Matched at send-post time (true) or recv-post time (false).
        at_send: bool,
        /// Match id from the paired [`EventData::SendPosted`] (0 = unknown).
        match_id: u64,
        /// Task that posted the matched receive (0 = outside any task).
        recv_task: u64,
    },
    /// vmpi: a matched payload was copied to its target and the requests
    /// completed (fires on the delivery lane).
    MsgDelivered {
        /// Sending rank (communicator-local).
        src: u32,
        /// Message tag.
        tag: i32,
        /// Communicator id.
        comm: u64,
        /// Payload size in bytes.
        bytes: u64,
        /// Match id from the paired [`EventData::SendPosted`] (0 = unknown).
        match_id: u64,
        /// Task that posted the matched receive (0 = outside any task).
        recv_task: u64,
        /// Fabric queue + transit time: delivery time minus send-post
        /// time, in bus microseconds (0 when unattributed).
        queue_us: u64,
    },
    /// vmpi: a `waitany` call woke up with a completed request.
    WaitanyWake {
        /// Index of the completed request within the set.
        index: u32,
    },
    /// vmpi: mailbox depth after a queue mutation (drives the
    /// requests-in-flight and bytes-queued counter tracks).
    QueueDepth {
        /// World rank owning the mailbox.
        mailbox: u32,
        /// Unmatched envelopes queued.
        msgs: u32,
        /// Posted-but-unmatched receives.
        recvs: u32,
        /// Total payload bytes queued in unmatched envelopes.
        bytes: u64,
    },
    /// vmpi fabric: per-node link state after a flow was injected or
    /// retired (drives the in-flight-flow and uplink-bytes counter
    /// tracks of the contention-aware network fabric).
    FabricDepth {
        /// Fabric node index (ranks grouped per `ranks_per_node`).
        node: u32,
        /// Flows currently draining through the node's uplink.
        up_flows: u32,
        /// Flows currently draining through the node's downlink.
        down_flows: u32,
        /// Payload bytes still queued on the node's uplink.
        queued_bytes: u64,
    },
    /// depsan: a data-flow contract violation (undeclared access, race,
    /// communication lint). Rare by construction — a correct run emits
    /// none — so the leaked `detail` string is acceptable.
    SanViolation {
        /// Violation kind (kebab-case, e.g. `"tag-size-mismatch"`).
        kind: &'static str,
        /// depsan task id of the offending scope (0 = outside any task).
        task: u64,
        /// Object involved (0 when not object-related).
        obj: u64,
        /// Human-readable description.
        detail: &'static str,
    },
    /// vmpi chaos: the fault plan acted on a frame. `kind` is the fault
    /// kind (`"drop"`, `"dup"`, `"corrupt"`, `"delay"`, `"stall"`,
    /// `"crash"`, `"crash-drop"`).
    FaultInjected {
        /// Fault kind.
        kind: &'static str,
        /// Sending world rank.
        src: u32,
        /// Destination world rank.
        dst: u32,
        /// Message tag.
        tag: i32,
        /// Reliability-layer sequence number on the (src, dst) channel.
        seq: u64,
    },
    /// vmpi chaos: the reliability layer re-sent an unacknowledged frame.
    Retransmit {
        /// Sending world rank.
        src: u32,
        /// Destination world rank.
        dst: u32,
        /// Message tag.
        tag: i32,
        /// Channel sequence number of the frame.
        seq: u64,
        /// Retransmission attempt (1 = first resend).
        attempt: u32,
    },
    /// core: a rank snapshotted its local mesh state for rollback.
    CheckpointTaken {
        /// Rank that took the checkpoint.
        rank: u32,
        /// Timestep at the snapshot.
        tstep: u32,
        /// Stage within the timestep.
        stage: u32,
        /// Blocks captured.
        blocks: u32,
        /// Approximate payload bytes captured.
        bytes: u64,
    },
    /// vmpi chaos: a frame was acknowledged after one or more
    /// retransmissions — the peer recovered within the retry budget.
    RankRecovered {
        /// Peer world rank that finally acknowledged.
        peer: u32,
        /// Retransmissions it took.
        retries: u32,
    },
    /// taskrt: a trace-cache transition (`"record"`, `"hit"`, `"miss"`,
    /// `"divergence"`, `"invalidate"`). `tasks` is the number of tasks
    /// the transition covered (trace length, or 0 for invalidations).
    TraceMark {
        /// Transition kind.
        kind: &'static str,
        /// Trace scope key.
        key: u64,
        /// Tasks covered by the transition.
        tasks: u32,
    },
    /// core: a coarse phase interval recorded by the `Trace` recorder
    /// (stencil, pack, unpack, ... — the Fig. 1–3 palette).
    Span {
        /// Phase kind name.
        kind: &'static str,
        /// Start, microseconds since the bus epoch.
        start_us: u64,
        /// End, microseconds since the bus epoch.
        end_us: u64,
    },
    /// vmpi/taskrt: the calling thread blocked waiting for progress
    /// (`"request_wait"`, `"waitany"`, `"taskwait"`). Unlike [`Span`]
    /// these are emitted only when the wait actually parked the thread.
    WaitSpan {
        /// Wait kind name.
        kind: &'static str,
        /// Start of the blocked interval, bus microseconds.
        start_us: u64,
        /// End of the blocked interval, bus microseconds.
        end_us: u64,
    },
    /// core: a variant's main loop entered timestep `tstep` (rank-0 marks
    /// delimit the analyzer's per-timestep windows).
    TimestepMark {
        /// Timestep index about to run.
        tstep: u32,
    },
}

impl EventData {
    /// Short stable name of the variant (used by exporters).
    pub fn name(&self) -> &'static str {
        match self {
            EventData::TaskCreated { .. } => "task_created",
            EventData::TaskReady { .. } => "task_ready",
            EventData::TaskStart { .. } => "task_start",
            EventData::TaskEnd { .. } => "task_end",
            EventData::TaskBlocked { .. } => "task_blocked",
            EventData::TaskCompleted { .. } => "task_completed",
            EventData::DepEdge { .. } => "dep_edge",
            EventData::HoldAcquire { .. } => "hold_acquire",
            EventData::HoldRelease { .. } => "hold_release",
            EventData::SendPosted { .. } => "send_posted",
            EventData::RecvPosted { .. } => "recv_posted",
            EventData::MsgMatched { .. } => "msg_matched",
            EventData::MsgDelivered { .. } => "msg_delivered",
            EventData::WaitanyWake { .. } => "waitany_wake",
            EventData::QueueDepth { .. } => "queue_depth",
            EventData::FabricDepth { .. } => "fabric_depth",
            EventData::SanViolation { .. } => "san_violation",
            EventData::FaultInjected { .. } => "fault_injected",
            EventData::Retransmit { .. } => "retransmit",
            EventData::CheckpointTaken { .. } => "checkpoint_taken",
            EventData::RankRecovered { .. } => "rank_recovered",
            EventData::TraceMark { .. } => "trace_mark",
            EventData::Span { .. } => "span",
            EventData::WaitSpan { .. } => "wait_span",
            EventData::TimestepMark { .. } => "timestep",
        }
    }
}
