//! Minimal JSON syntax validator.
//!
//! The exporter builds its JSON by hand (no serde in this offline
//! workspace), so tests and the CI smoke run need an independent check
//! that the output actually parses. This is a strict recursive-descent
//! recognizer — it validates syntax only and builds no tree.

/// Validates that `input` is one complete JSON value. Returns the byte
/// offset and a message on the first syntax error.
pub fn validate(input: &str) -> Result<(), String> {
    let b = input.as_bytes();
    let mut p = Parser {
        b,
        pos: 0,
        depth: 0,
    };
    p.skip_ws();
    p.value()?;
    p.skip_ws();
    if p.pos != b.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(())
}

struct Parser<'a> {
    b: &'a [u8],
    pos: usize,
    depth: usize,
}

const MAX_DEPTH: usize = 256;

impl Parser<'_> {
    fn err(&self, msg: &str) -> String {
        format!("{msg} at byte {}", self.pos)
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", c as char)))
        }
    }

    fn value(&mut self) -> Result<(), String> {
        if self.depth >= MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string(),
            Some(b't') => self.literal("true"),
            Some(b'f') => self.literal("false"),
            Some(b'n') => self.literal("null"),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(&format!("unexpected character '{}'", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self) -> Result<(), String> {
        self.depth += 1;
        self.expect(b'{')?;
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            self.value()?;
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(());
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<(), String> {
        self.depth += 1;
        self.expect(b'[')?;
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            self.value()?;
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(());
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<(), String> {
        self.expect(b'"')?;
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(());
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => {
                            self.pos += 1;
                        }
                        Some(b'u') => {
                            self.pos += 1;
                            for _ in 0..4 {
                                match self.peek() {
                                    Some(c) if c.is_ascii_hexdigit() => self.pos += 1,
                                    _ => return Err(self.err("bad \\u escape")),
                                }
                            }
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                }
                Some(c) if c < 0x20 => return Err(self.err("raw control character in string")),
                Some(_) => self.pos += 1,
            }
        }
    }

    fn number(&mut self) -> Result<(), String> {
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut digits = 0;
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
            digits += 1;
        }
        if digits == 0 {
            return Err(self.err("expected digits"));
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            let mut frac = 0;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
                frac += 1;
            }
            if frac == 0 {
                return Err(self.err("expected fraction digits"));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            let mut exp = 0;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
                exp += 1;
            }
            if exp == 0 {
                return Err(self.err("expected exponent digits"));
            }
        }
        Ok(())
    }

    fn literal(&mut self, lit: &str) -> Result<(), String> {
        if self.b[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_valid_documents() {
        for doc in [
            "{}",
            "[]",
            "null",
            "-12.5e+3",
            r#"{"a":[1,2,{"b":"x\ny","c":true,"d":null}],"e":"é"}"#,
            "  { \"k\" : [ 1 , 2 ] }  ",
        ] {
            validate(doc).unwrap_or_else(|e| panic!("{doc}: {e}"));
        }
    }

    #[test]
    fn rejects_invalid_documents() {
        for doc in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "{\"a\" 1}",
            "\"unterminated",
            "01x",
            "{} extra",
            "1.",
            "1e",
            "tru",
        ] {
            assert!(validate(doc).is_err(), "should reject: {doc}");
        }
    }
}
