//! `obs` — end-to-end data-flow observability for the miniAMR workspace.
//!
//! The paper's methodology leans on Extrae/Paraver traces to explain
//! *why* the data-flow variant overlaps communication with computation;
//! this crate is the equivalent instrument for our virtual-MPI world:
//!
//! * a lock-light structured **event bus** ([`EventBus`]) that taskrt,
//!   vmpi and tampi feed with task-lifecycle, message and hold events;
//! * a **Chrome `trace_event` exporter** ([`export_chrome`]) that merges
//!   every rank into one Perfetto-loadable timeline (one process per
//!   rank, one lane per worker, counter tracks for ready tasks,
//!   in-flight requests and queued bytes);
//! * a **metrics registry** ([`metrics`]) of named atomic counters and
//!   gauges surfaced in the CLI summary;
//! * a **stall watchdog** ([`Watchdog`]) that turns silent dataflow
//!   deadlocks into a diagnostic dump and a nonzero exit.
//!
//! Everything is off by default. The *only* cost on the disabled path is
//! a relaxed atomic load and a branch (`bus()` returning `None`), so the
//! PR-1 zero-allocation hot paths and the kernel benchmarks are
//! unaffected until someone passes `--trace-json` / `--metrics` /
//! `--watchdog_ms`.

mod bus;
mod chrome;
pub mod critpath;
mod event;
pub mod json;
mod metrics;
pub mod report;
pub mod span;
mod watchdog;

pub use bus::{Drained, EventBus, DEFAULT_RING_CAPACITY};
pub use chrome::export_chrome;
pub use event::{Event, EventData, LANE_MAIN, LANE_NET, UNKNOWN_RANK};
pub use metrics::{metrics, Counter, Gauge, Histogram, HistogramSnapshot, MetricsRegistry};
pub use watchdog::{
    diagnostics, DiagGuard, DiagRegistry, StallAction, Watchdog, WatchdogConfig, STALL_EXIT_CODE,
};

use std::cell::Cell;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;

static ENABLED: AtomicBool = AtomicBool::new(false);
static BUS: OnceLock<EventBus> = OnceLock::new();

/// Turns the global event bus on (idempotent) and returns it.
pub fn enable() -> &'static EventBus {
    enable_with_capacity(DEFAULT_RING_CAPACITY)
}

/// Turns the global event bus on with a per-stripe ring capacity. The
/// capacity is only honoured by the call that actually creates the bus.
pub fn enable_with_capacity(ring_capacity: usize) -> &'static EventBus {
    let bus = BUS.get_or_init(|| EventBus::new(ring_capacity));
    ENABLED.store(true, Ordering::Release);
    bus
}

/// True once [`enable`] has been called. Cheap enough to gate metric
/// increments with.
#[inline]
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// The global event bus, or `None` while observability is disabled.
///
/// This is the instrumentation entry point: every emit site in taskrt /
/// vmpi / tampi is written as `if let Some(bus) = obs::bus() { ... }`,
/// which compiles down to a relaxed load and a predictable branch on the
/// disabled path.
#[inline]
pub fn bus() -> Option<&'static EventBus> {
    if is_enabled() {
        BUS.get()
    } else {
        None
    }
}

thread_local! {
    static THREAD_RANK: Cell<u32> = const { Cell::new(UNKNOWN_RANK) };
    static THREAD_WORKER: Cell<u32> = const { Cell::new(LANE_MAIN) };
    static THREAD_TASK: Cell<u64> = const { Cell::new(0) };
}

/// Declares which virtual rank the calling thread belongs to. Called by
/// `vmpi::World::run` when a rank thread starts, and inherited by taskrt
/// workers via [`set_thread_rank`] at runtime construction.
pub fn set_thread_rank(rank: u32) {
    THREAD_RANK.with(|r| r.set(rank));
}

/// Declares the calling thread's timeline lane: a taskrt worker index,
/// [`LANE_MAIN`] for a rank's main thread, or [`LANE_NET`] for the
/// delivery/network thread.
pub fn set_thread_worker(worker: u32) {
    THREAD_WORKER.with(|w| w.set(worker));
}

/// The calling thread's `(rank, worker)` attribution, defaulting to
/// `(UNKNOWN_RANK, LANE_MAIN)` for threads that never declared one.
#[inline]
pub fn thread_ctx() -> (u32, u32) {
    (THREAD_RANK.with(Cell::get), THREAD_WORKER.with(Cell::get))
}

/// Declares which task the calling thread is currently executing and
/// returns the previous value so nested executions can restore it.
///
/// `taskrt` sets this around task bodies (only while tracing is on) so
/// layers below it — `vmpi` in particular — can attribute message events
/// to the posting task without a dependency on the task runtime.
pub fn set_thread_task(task: u64) -> u64 {
    THREAD_TASK.with(|t| t.replace(task))
}

/// The task id the calling thread is executing, or 0 outside any task
/// (or when tracing is disabled — [`set_thread_task`] is gated).
#[inline]
pub fn thread_task() -> u64 {
    THREAD_TASK.with(Cell::get)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thread_ctx_defaults_and_is_per_thread() {
        std::thread::spawn(|| {
            assert_eq!(thread_ctx(), (UNKNOWN_RANK, LANE_MAIN));
            set_thread_rank(3);
            set_thread_worker(1);
            assert_eq!(thread_ctx(), (3, 1));
        })
        .join()
        .unwrap();
        // This thread's context is untouched by the other thread.
        std::thread::spawn(|| {
            assert_eq!(thread_ctx(), (UNKNOWN_RANK, LANE_MAIN));
        })
        .join()
        .unwrap();
    }

    #[test]
    fn bus_is_none_until_enabled_then_sticky() {
        // Test processes share globals; other tests may already have
        // enabled the bus, so only assert the post-enable contract.
        let bus = enable();
        assert!(is_enabled());
        let again = enable_with_capacity(4);
        assert!(std::ptr::eq(bus, again), "enable is idempotent");
        assert!(std::ptr::eq(bus, super::bus().unwrap()));
    }
}
