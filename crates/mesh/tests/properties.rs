//! Property-based tests of the mesh engine's invariants.

use amr_mesh::block_id::{BlockId, Dir, Side};
use amr_mesh::data::{merge_children, split_block, BlockData, BlockLayout};
use amr_mesh::face;
use amr_mesh::partition::{imbalance, rcb_partition, sfc_partition};
use amr_mesh::stencil::{apply_stencil, apply_stencil_reference, StencilKind};
use amr_mesh::{MeshDirectory, MeshParams, Object, Shape};
use proptest::prelude::*;

fn arb_params() -> impl Strategy<Value = MeshParams> {
    (
        1usize..=2,
        1usize..=2,
        1usize..=2,
        1usize..=2,
        1usize..=2,
        1usize..=2,
    )
        .prop_map(|(npx, npy, npz, ix, iy, iz)| MeshParams {
            npx,
            npy,
            npz,
            init_x: ix + 1,
            init_y: iy + 1,
            init_z: iz,
            nx: 4,
            ny: 4,
            nz: 4,
            num_vars: 2,
            num_refine: 2,
            block_change: 1,
        })
}

fn arb_object() -> impl Strategy<Value = Object> {
    (
        prop_oneof![
            Just(Shape::Rectangle),
            Just(Shape::Spheroid),
            Just(Shape::CylinderX),
            Just(Shape::CylinderY),
            Just(Shape::CylinderZ),
            Just(Shape::HemisphereXPlus),
            Just(Shape::HemisphereZMinus),
        ],
        any::<bool>(),
        (0.0f64..1.0, 0.0f64..1.0, 0.0f64..1.0),
        0.02f64..0.35,
        (-0.08f64..0.08, -0.08f64..0.08, -0.08f64..0.08),
        any::<bool>(),
    )
        .prop_map(
            |(shape, solid, (cx, cy, cz), r, (vx, vy, vz), bounce)| Object {
                shape,
                solid,
                center: [cx, cy, cz],
                size: [r, r * 0.8, r * 1.1],
                move_rate: [vx, vy, vz],
                growth: [0.0; 3],
                bounce,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any refinement history driven by any objects keeps the 2:1 face
    /// balance and only ever changes levels by one step per plan.
    #[test]
    fn refinement_preserves_two_to_one(
        params in arb_params(),
        objects in prop::collection::vec(arb_object(), 1..3),
        steps in 1usize..6,
    ) {
        let mut dir = MeshDirectory::initial(params);
        let mut objects = objects;
        dir.refine_to_fixpoint(&objects);
        prop_assert!(dir.check_balance().is_ok());
        for _ in 0..steps {
            for o in objects.iter_mut() {
                o.step();
            }
            let before: std::collections::BTreeMap<_, _> =
                dir.iter().map(|(b, _)| (*b, ())).collect();
            let plan = dir.plan_refinement(&objects);
            for parent in &plan.merges {
                for c in parent.children() {
                    prop_assert!(before.contains_key(&c), "merge of inactive child");
                }
            }
            dir.apply_plan(&plan);
            prop_assert!(dir.check_balance().is_ok(), "2:1 violated");
        }
    }

    /// Splits add exactly 7 net blocks, merges remove exactly 7.
    #[test]
    fn plan_block_accounting(
        params in arb_params(),
        objects in prop::collection::vec(arb_object(), 1..3),
    ) {
        let mut dir = MeshDirectory::initial(params);
        dir.refine_to_fixpoint(&objects);
        let mut objects = objects;
        for o in objects.iter_mut() {
            o.step();
        }
        let plan = dir.plan_refinement(&objects);
        let before = dir.len();
        dir.apply_plan(&plan);
        let expected = before + 7 * plan.splits.len() - 7 * plan.merges.len();
        prop_assert_eq!(dir.len(), expected);
    }

    /// Both partitioners cover every block exactly once and stay within
    /// reasonable imbalance.
    #[test]
    fn partitions_cover_and_balance(
        params in arb_params(),
        objects in prop::collection::vec(arb_object(), 1..3),
        ranks in 1usize..9,
    ) {
        let mut dir = MeshDirectory::initial(params);
        dir.refine_to_fixpoint(&objects);
        let sfc = sfc_partition(&dir, ranks);
        prop_assert_eq!(sfc.len(), dir.len());
        prop_assert!(sfc.values().all(|&r| r < ranks));
        prop_assert!(imbalance(&sfc, ranks) <= 1.0 + ranks as f64 / dir.len().max(1) as f64 + 1e-9);
        let rcb = rcb_partition(&dir, ranks);
        prop_assert_eq!(rcb.len(), dir.len());
        prop_assert!(rcb.values().all(|&r| r < ranks));
    }

    /// split → merge is the identity on arbitrary smooth block data.
    #[test]
    fn split_merge_identity(seed in any::<u64>()) {
        let p = MeshParams::test_small();
        let layout = BlockLayout::of(&p);
        let parent = BlockData::empty(BlockId::new(0, 0, 0, 0), &p);
        // Fill with a seeded deterministic pattern.
        parent.buf.full().with_write(|d| {
            let mut x = seed | 1;
            for v in d.iter_mut() {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                *v = (x >> 11) as f64 / (1u64 << 53) as f64;
            }
        });
        let children = split_block(&parent, &p);
        let merged = merge_children(&children, &p);
        let a = parent.pack_interior(&layout, 0..p.num_vars);
        let b = merged.pack_interior(&layout, 0..p.num_vars);
        for (x, y) in a.iter().zip(b.iter()) {
            prop_assert!((x - y).abs() < 1e-12);
        }
    }

    /// Face extract → inject into the matching ghost plane is lossless,
    /// and restriction preserves the face mean, in every direction.
    #[test]
    fn face_roundtrip_and_restriction_mean(seed in any::<u64>(), d in 0usize..3, hi in any::<bool>()) {
        let p = MeshParams::test_small();
        let layout = BlockLayout::of(&p);
        let dir = [Dir::X, Dir::Y, Dir::Z][d];
        let side = if hi { Side::Hi } else { Side::Lo };
        let a = BlockData::empty(BlockId::new(0, 0, 0, 0), &p);
        a.buf.full().with_write(|data| {
            let mut x = seed | 1;
            for v in data.iter_mut() {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(99);
                *v = (x >> 40) as f64;
            }
        });
        let f = face::extract_face(&a, &layout, dir, side, 0..p.num_vars);
        let (n1, n2) = face::face_dims(&layout, dir);
        prop_assert_eq!(f.len(), n1 * n2 * p.num_vars);
        // Inject into the opposite ghost plane of a fresh block and
        // re-read.
        let b = BlockData::empty(BlockId::new(0, 0, 0, 0), &p);
        face::inject_ghost_face(&b, &layout, dir, side.opposite(), 0..p.num_vars, &f);
        // Restriction preserves the mean.
        let r = face::restrict_face(&f, n1, n2, p.num_vars);
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        prop_assert!((mean(&f) - mean(&r)).abs() < 1e-9 * mean(&f).abs().max(1.0));
        // Prolongation of the restriction also preserves the mean.
        let pr = face::prolong_face(&r, n1, n2, p.num_vars);
        prop_assert!((mean(&pr) - mean(&r)).abs() < 1e-12 * mean(&r).abs().max(1.0));
    }

    /// The plane-sliding stencil kernel is **bitwise** identical to the
    /// original full-work-array kernel on arbitrary block shapes, data,
    /// and variable subranges — the property that keeps cross-variant
    /// checksums exact after the allocation-free rewrite.
    #[test]
    fn plane_sliding_stencil_matches_reference_bitwise(
        seed in any::<u64>(),
        nx in 2usize..6,
        ny in 2usize..6,
        nz in 2usize..6,
        use_27pt in any::<bool>(),
        vstart in 0usize..2,
    ) {
        let p = MeshParams {
            npx: 1, npy: 1, npz: 1,
            init_x: 1, init_y: 1, init_z: 1,
            nx, ny, nz,
            num_vars: 3,
            num_refine: 1,
            block_change: 1,
        };
        let layout = BlockLayout::of(&p);
        let kind = if use_27pt { StencilKind::TwentySevenPoint } else { StencilKind::SevenPoint };
        let a = BlockData::empty(BlockId::new(0, 0, 0, 0), &p);
        let b = BlockData::empty(BlockId::new(0, 0, 0, 0), &p);
        for blk in [&a, &b] {
            blk.buf.full().with_write(|d| {
                let mut x = seed | 1;
                for v in d.iter_mut() {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    *v = (x >> 11) as f64 / (1u64 << 53) as f64 - 0.5;
                }
            });
        }
        apply_stencil(&a, &layout, kind, vstart..3);
        apply_stencil_reference(&b, &layout, kind, vstart..3);
        let va = a.buf.full().to_vec();
        let vb = b.buf.full().to_vec();
        for (i, (x, y)) in va.iter().zip(vb.iter()).enumerate() {
            prop_assert_eq!(x.to_bits(), y.to_bits(), "elem {} differs: {} vs {}", i, x, y);
        }
    }

    /// Objects never report refinement for blocks far outside their
    /// bounding box, and always for blocks straddling their boundary.
    #[test]
    fn object_refinement_is_local(obj in arb_object()) {
        let p = MeshParams::test_small();
        // A block fully outside the object's AABB must not refine.
        let all_blocks = [
            BlockId::new(0, 0, 0, 0),
            BlockId::new(0, 1, 0, 0),
            BlockId::new(0, 0, 1, 0),
            BlockId::new(0, 1, 1, 1),
        ];
        for b in all_blocks {
            let (lo, hi) = b.bounds(&p);
            let outside = (0..3).any(|d| {
                lo[d] > obj.center[d] + obj.size[d] + 1e-12
                    || hi[d] < obj.center[d] - obj.size[d] - 1e-12
            });
            if outside {
                prop_assert!(!obj.drives_refinement(&b, &p), "refined a non-intersecting block");
            }
        }
    }

    /// Morton keys are unique over the active set and parents sort before
    /// spatially-later siblings' subtrees consistently.
    #[test]
    fn morton_keys_unique(
        params in arb_params(),
        objects in prop::collection::vec(arb_object(), 1..2),
    ) {
        let mut dir = MeshDirectory::initial(params.clone());
        dir.refine_to_fixpoint(&objects);
        let mut keys: Vec<u128> = dir.iter().map(|(b, _)| b.morton_key(&params)).collect();
        let n = keys.len();
        keys.sort_unstable();
        keys.dedup();
        prop_assert_eq!(keys.len(), n, "duplicate Morton keys");
    }
}
