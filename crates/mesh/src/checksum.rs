//! Deterministic checksums for solution validation.
//!
//! miniAMR validates the solution every few stages: each rank reduces its
//! blocks' variable sums locally, then a global reduction combines the
//! ranks and the result is compared against the previous checkpoint
//! (§II-A, Algorithm 1).
//!
//! Floating-point addition is not associative, so this implementation
//! fixes the combination order end-to-end: cells are summed in layout
//! order within a block, and the per-block sums are folded in global
//! block-id order — independent of which rank happens to own each block
//! (the variant layer gathers `(block id, sums)` pairs to rank 0 and
//! sorts before folding). That makes checksums **bitwise identical
//! across variants, load balancers, rank counts and mid-run elastic
//! resizes**, a stronger property than the reference (which uses
//! `MPI_Allreduce`) and the backbone of this repo's equivalence and
//! elastic-soak tests.

use crate::data::{BlockData, BlockLayout};
use std::ops::Range;

/// Per-variable sums over one block's interior cells, in layout order.
pub fn block_sums(block: &BlockData, layout: &BlockLayout, vars: Range<usize>) -> Vec<f64> {
    let mut out = Vec::with_capacity(vars.len());
    let vstart = vars.start;
    let slab = block.buf.slice(layout.var_elem_range(vars.clone()));
    slab.with_read(|data| {
        for v in vars.map(|v| v - vstart) {
            let mut sum = 0.0;
            for z in 1..=layout.nz {
                for y in 1..=layout.ny {
                    let base = layout.idx(v, z, y, 1);
                    for x in 0..layout.nx {
                        sum += data[base + x];
                    }
                }
            }
            out.push(sum);
        }
    });
    out
}

/// Combines per-block sums (already in `BlockId` order) into per-variable
/// partials.
pub fn combine_block_sums(per_block: &[Vec<f64>], num_vars: usize) -> Vec<f64> {
    let mut out = vec![0.0; num_vars];
    for sums in per_block {
        debug_assert_eq!(sums.len(), num_vars);
        for (acc, s) in out.iter_mut().zip(sums.iter()) {
            *acc += s;
        }
    }
    out
}

/// Validation outcome of comparing a fresh checksum against the previous
/// checkpoint.
#[derive(Debug, Clone, PartialEq)]
pub enum Validation {
    /// Every variable within tolerance.
    Ok,
    /// At least one variable drifted beyond tolerance; carries the worst
    /// `(variable, relative error)`.
    Failed {
        /// Variable index with the largest relative deviation.
        var: usize,
        /// Its relative deviation.
        rel_err: f64,
    },
}

/// Compares a checksum against the previous one. The averaging stencil
/// with zero-gradient boundaries keeps variable sums nearly constant;
/// real corruption (a race, a lost message) shifts them by whole cells.
pub fn validate(prev: &[f64], current: &[f64], tolerance: f64) -> Validation {
    assert_eq!(prev.len(), current.len());
    let mut worst: Option<(usize, f64)> = None;
    for (v, (p, c)) in prev.iter().zip(current.iter()).enumerate() {
        let denom = p.abs().max(1e-300);
        let rel = (c - p).abs() / denom;
        if rel > tolerance && worst.is_none_or(|(_, w)| rel > w) {
            worst = Some((v, rel));
        }
    }
    match worst {
        None => Validation::Ok,
        Some((var, rel_err)) => Validation::Failed { var, rel_err },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block_id::BlockId;
    use crate::params::MeshParams;

    #[test]
    fn sums_match_manual_computation() {
        let p = MeshParams::test_small();
        let l = BlockLayout::of(&p);
        let b = BlockData::empty(BlockId::new(0, 0, 0, 0), &p);
        b.buf.full().with_write(|d| {
            for z in 1..=l.nz {
                for y in 1..=l.ny {
                    for x in 1..=l.nx {
                        d[l.idx(0, z, y, x)] = 1.0;
                        d[l.idx(1, z, y, x)] = 2.0;
                    }
                }
            }
            // Pollute a ghost cell: checksums must ignore ghosts.
            d[l.idx(0, 0, 0, 0)] = 1e9;
        });
        let sums = block_sums(&b, &l, 0..2);
        assert_eq!(sums, vec![64.0, 128.0]);
    }

    #[test]
    fn combination_is_order_fixed() {
        let a = vec![vec![0.1, 1.0], vec![0.2, 2.0], vec![0.3, 3.0]];
        let c = combine_block_sums(&a, 2);
        // Exactly left-to-right addition.
        assert_eq!(c[0], 0.1 + 0.2 + 0.3);
        assert_eq!(c[1], 1.0 + 2.0 + 3.0);
    }

    #[test]
    fn validation_catches_large_drift() {
        let prev = vec![100.0, 200.0];
        assert_eq!(validate(&prev, &[100.0, 200.0], 1e-9), Validation::Ok);
        assert_eq!(validate(&prev, &[100.0001, 200.0], 1e-3), Validation::Ok);
        match validate(&prev, &[100.0, 260.0], 1e-3) {
            Validation::Failed { var, rel_err } => {
                assert_eq!(var, 1);
                assert!((rel_err - 0.3).abs() < 1e-12);
            }
            Validation::Ok => panic!("30% drift must fail validation"),
        }
    }
}
