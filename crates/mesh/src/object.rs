//! Simulated objects driving refinement.
//!
//! miniAMR refines the mesh around the *boundaries* of moving objects
//! (`--num_objects` + per-object spec). This module reimplements the
//! catalogue: axis-aligned rectangles (boxes), spheroids, cylinders along
//! each axis and hemispheres facing each axis direction, in *surface*
//! (refine where the boundary passes) and *solid* (refine the whole
//! volume) variants — the 16 types of the reference implementation.
//! Objects move by a per-timestep rate, optionally bounce off the domain
//! walls, and grow by a per-timestep increment.

use crate::block_id::BlockId;
use crate::params::MeshParams;

/// Geometric shape of an object, with half-extents interpreted per shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Shape {
    /// Axis-aligned box; `size` are half-edge lengths.
    Rectangle,
    /// Ellipsoid; `size` are semi-axes.
    Spheroid,
    /// Elliptic cylinder with its axis along X; `size[1]`, `size[2]` are
    /// the transverse semi-axes and `size[0]` the half-length.
    CylinderX,
    /// Cylinder along Y.
    CylinderY,
    /// Cylinder along Z.
    CylinderZ,
    /// Half-ellipsoid: the +X half of a spheroid.
    HemisphereXPlus,
    /// The −X half.
    HemisphereXMinus,
    /// The +Y half.
    HemisphereYPlus,
    /// The −Y half.
    HemisphereYMinus,
    /// The +Z half.
    HemisphereZPlus,
    /// The −Z half.
    HemisphereZMinus,
}

impl Shape {
    /// The full catalogue (11 geometries × 2 fill modes ≥ the 16 types of
    /// the reference implementation).
    pub const ALL: [Shape; 11] = [
        Shape::Rectangle,
        Shape::Spheroid,
        Shape::CylinderX,
        Shape::CylinderY,
        Shape::CylinderZ,
        Shape::HemisphereXPlus,
        Shape::HemisphereXMinus,
        Shape::HemisphereYPlus,
        Shape::HemisphereYMinus,
        Shape::HemisphereZPlus,
        Shape::HemisphereZMinus,
    ];
}

/// A moving object in the simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct Object {
    /// Geometry.
    pub shape: Shape,
    /// Refine only boundary-crossing blocks (`false`) or every
    /// intersecting block (`true`).
    pub solid: bool,
    /// Current center.
    pub center: [f64; 3],
    /// Current half-extents / semi-axes.
    pub size: [f64; 3],
    /// Center displacement per timestep.
    pub move_rate: [f64; 3],
    /// Half-extent growth per timestep.
    pub growth: [f64; 3],
    /// Reverse the move rate when the center would leave the unit cube.
    pub bounce: bool,
}

impl Object {
    /// A surface spheroid — the most common input in the paper's
    /// experiments.
    pub fn sphere(center: [f64; 3], radius: f64, move_rate: [f64; 3]) -> Object {
        Object {
            shape: Shape::Spheroid,
            solid: false,
            center,
            size: [radius; 3],
            move_rate,
            growth: [0.0; 3],
            bounce: false,
        }
    }

    /// Advances the object by one timestep (movement, bounce, growth).
    pub fn step(&mut self) {
        for d in 0..3 {
            let next = self.center[d] + self.move_rate[d];
            if self.bounce && !(0.0..=1.0).contains(&next) {
                self.move_rate[d] = -self.move_rate[d];
                self.center[d] += self.move_rate[d];
            } else {
                self.center[d] = next;
            }
            self.size[d] = (self.size[d] + self.growth[d]).max(0.0);
        }
    }

    /// Signed "radius" of a point in the object's normalized metric:
    /// ≤ 1 inside, > 1 outside. Infinity marks the excluded half-space of
    /// hemispheres.
    fn metric(&self, p: [f64; 3]) -> f64 {
        let rel = [
            p[0] - self.center[0],
            p[1] - self.center[1],
            p[2] - self.center[2],
        ];
        let norm = |d: usize| {
            if self.size[d] <= 0.0 {
                f64::INFINITY
            } else {
                rel[d] / self.size[d]
            }
        };
        match self.shape {
            Shape::Rectangle => norm(0).abs().max(norm(1).abs()).max(norm(2).abs()),
            Shape::Spheroid => (norm(0).powi(2) + norm(1).powi(2) + norm(2).powi(2)).sqrt(),
            Shape::CylinderX => (norm(1).powi(2) + norm(2).powi(2))
                .sqrt()
                .max(norm(0).abs()),
            Shape::CylinderY => (norm(0).powi(2) + norm(2).powi(2))
                .sqrt()
                .max(norm(1).abs()),
            Shape::CylinderZ => (norm(0).powi(2) + norm(1).powi(2))
                .sqrt()
                .max(norm(2).abs()),
            Shape::HemisphereXPlus => hemi(rel[0] >= 0.0, norm(0), norm(1), norm(2)),
            Shape::HemisphereXMinus => hemi(rel[0] <= 0.0, norm(0), norm(1), norm(2)),
            Shape::HemisphereYPlus => hemi(rel[1] >= 0.0, norm(0), norm(1), norm(2)),
            Shape::HemisphereYMinus => hemi(rel[1] <= 0.0, norm(0), norm(1), norm(2)),
            Shape::HemisphereZPlus => hemi(rel[2] >= 0.0, norm(0), norm(1), norm(2)),
            Shape::HemisphereZMinus => hemi(rel[2] <= 0.0, norm(0), norm(1), norm(2)),
        }
    }

    /// Whether a point is inside (or on) the object.
    pub fn contains(&self, p: [f64; 3]) -> bool {
        self.metric(p) <= 1.0
    }

    /// Conservative intersection classification of an axis-aligned box
    /// against the object, by sampling the box's corner lattice.
    fn classify(&self, lo: [f64; 3], hi: [f64; 3]) -> BoxClass {
        // A 3×3×3 sample lattice (corners, edge/face midpoints, center) is
        // exact enough for refinement decisions at miniAMR block sizes and
        // keeps the decision identical across all ranks.
        let mut inside = 0usize;
        let mut outside = 0usize;
        for iz in 0..3 {
            for iy in 0..3 {
                for ix in 0..3 {
                    let p = [
                        lo[0] + (hi[0] - lo[0]) * ix as f64 * 0.5,
                        lo[1] + (hi[1] - lo[1]) * iy as f64 * 0.5,
                        lo[2] + (hi[2] - lo[2]) * iz as f64 * 0.5,
                    ];
                    if self.contains(p) {
                        inside += 1;
                    } else {
                        outside += 1;
                    }
                }
            }
        }
        if inside == 27 {
            BoxClass::Inside
        } else if outside == 27 {
            // The surface can still clip a box whose lattice is entirely
            // outside (or entirely inside a huge box); check the box/AABB
            // overlap of the object's bounding box as a guard.
            if self.aabb_overlaps(lo, hi) {
                BoxClass::Straddles
            } else {
                BoxClass::Outside
            }
        } else {
            BoxClass::Straddles
        }
    }

    fn aabb_overlaps(&self, lo: [f64; 3], hi: [f64; 3]) -> bool {
        (0..3).all(|d| {
            let olo = self.center[d] - self.size[d];
            let ohi = self.center[d] + self.size[d];
            olo < hi[d] && lo[d] < ohi
        })
    }

    /// Whether a block should refine because of this object: its boundary
    /// crosses the block, or (for solid objects) the block intersects the
    /// volume at all.
    pub fn drives_refinement(&self, id: &BlockId, params: &MeshParams) -> bool {
        let (lo, hi) = id.bounds(params);
        match self.classify(lo, hi) {
            BoxClass::Straddles => true,
            BoxClass::Inside => self.solid,
            BoxClass::Outside => false,
        }
    }
}

#[derive(Debug, PartialEq, Eq)]
enum BoxClass {
    Inside,
    Outside,
    Straddles,
}

fn hemi(in_half: bool, nx: f64, ny: f64, nz: f64) -> f64 {
    if in_half {
        (nx * nx + ny * ny + nz * nz).sqrt()
    } else {
        f64::INFINITY
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p() -> MeshParams {
        MeshParams::test_small()
    }

    #[test]
    fn sphere_contains_center_not_far_point() {
        let s = Object::sphere([0.5, 0.5, 0.5], 0.2, [0.0; 3]);
        assert!(s.contains([0.5, 0.5, 0.5]));
        assert!(s.contains([0.69, 0.5, 0.5]));
        assert!(!s.contains([0.75, 0.5, 0.5]));
    }

    #[test]
    fn surface_sphere_refines_boundary_blocks_only() {
        let params = p();
        let s = Object::sphere([0.5, 0.5, 0.5], 0.45, [0.0; 3]);
        // A tiny block at the very center is fully inside: no refinement.
        let center_block = BlockId::new(2, 3, 3, 3); // bounds [0.375,0.5)^3 at level 2
        assert!(!s.drives_refinement(&center_block, &params));
        // A block containing the boundary refines.
        let boundary_block = BlockId::new(0, 1, 0, 0); // x in [0.5,1), contains r=0.45 shell
        assert!(s.drives_refinement(&boundary_block, &params));
    }

    #[test]
    fn solid_sphere_refines_interior_too() {
        let params = p();
        let mut s = Object::sphere([0.5, 0.5, 0.5], 0.45, [0.0; 3]);
        s.solid = true;
        let center_block = BlockId::new(2, 3, 3, 3);
        assert!(s.drives_refinement(&center_block, &params));
    }

    #[test]
    fn far_away_object_refines_nothing() {
        let params = p();
        let s = Object::sphere([-2.0, -2.0, -2.0], 0.1, [0.0; 3]);
        for x in 0..2 {
            let b = BlockId::new(0, x, 0, 0);
            assert!(!s.drives_refinement(&b, &params));
        }
    }

    #[test]
    fn movement_and_bounce() {
        let mut s = Object::sphere([0.9, 0.5, 0.5], 0.1, [0.2, 0.0, 0.0]);
        s.bounce = true;
        s.step();
        // 0.9 + 0.2 would leave the cube: bounce reverses the rate.
        assert!((s.center[0] - 0.7).abs() < 1e-12);
        assert_eq!(s.move_rate[0], -0.2);
        s.step();
        assert!((s.center[0] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn growth_expands_refinement_footprint() {
        let params = p();
        let mut s = Object::sphere([0.25, 0.25, 0.25], 0.05, [0.0; 3]);
        s.growth = [0.2; 3];
        let far = BlockId::new(0, 1, 0, 0);
        assert!(!s.drives_refinement(&far, &params));
        for _ in 0..3 {
            s.step();
        }
        assert!(
            s.drives_refinement(&far, &params),
            "grown object should reach the far block"
        );
    }

    #[test]
    fn hemisphere_halfspace_is_excluded() {
        let h = Object {
            shape: Shape::HemisphereXPlus,
            solid: false,
            center: [0.5, 0.5, 0.5],
            size: [0.3; 3],
            move_rate: [0.0; 3],
            growth: [0.0; 3],
            bounce: false,
        };
        assert!(h.contains([0.7, 0.5, 0.5]));
        assert!(
            !h.contains([0.3, 0.5, 0.5]),
            "the −X half of the sphere is not part of it"
        );
    }

    #[test]
    fn cylinder_axis_extent() {
        let c = Object {
            shape: Shape::CylinderZ,
            solid: false,
            center: [0.5, 0.5, 0.5],
            size: [0.1, 0.1, 0.4],
            move_rate: [0.0; 3],
            growth: [0.0; 3],
            bounce: false,
        };
        assert!(c.contains([0.5, 0.5, 0.85]));
        assert!(!c.contains([0.5, 0.5, 0.95]));
        assert!(!c.contains([0.65, 0.5, 0.5]));
    }

    #[test]
    fn rectangle_is_box_metric() {
        let r = Object {
            shape: Shape::Rectangle,
            solid: true,
            center: [0.5, 0.5, 0.5],
            size: [0.1, 0.2, 0.3],
            move_rate: [0.0; 3],
            growth: [0.0; 3],
            bounce: false,
        };
        assert!(r.contains([0.59, 0.69, 0.79]));
        assert!(!r.contains([0.61, 0.5, 0.5]));
    }
}
