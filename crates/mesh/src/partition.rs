//! Load-balance partitioners.
//!
//! After refinement changes the block population, miniAMR redistributes
//! blocks so every rank owns (nearly) the same number (§II-A, §IV-B).
//! Two partitioners are provided:
//!
//! * [`sfc_partition`] — sort active blocks along the Morton
//!   space-filling curve and cut the list into `ranks` equal runs. This
//!   is the primary strategy: contiguous runs keep sibling octets mostly
//!   together and make the rank-ordered checksum combination equal the
//!   global block-ordered sum (see `checksum`).
//! * [`rcb_partition`] — recursive coordinate bisection over block
//!   centers, the reference implementation's strategy, kept for the
//!   ablation benchmark comparing balancers.
//!
//! Both are pure functions of the directory, so every rank computes the
//! identical assignment without communication.

use crate::block_id::BlockId;
use crate::directory::MeshDirectory;
use std::collections::BTreeMap;

/// Assigns owners by equal cuts of the Morton-ordered block list.
/// Returns the new owner for every active block.
pub fn sfc_partition(dir: &MeshDirectory, ranks: usize) -> BTreeMap<BlockId, usize> {
    assert!(ranks > 0);
    let params = dir.params();
    let mut blocks: Vec<BlockId> = dir.iter().map(|(id, _)| *id).collect();
    blocks.sort_by_key(|b| b.morton_key(params));
    let n = blocks.len();
    let mut out = BTreeMap::new();
    for (i, id) in blocks.into_iter().enumerate() {
        // Rank r owns positions [r*n/ranks, (r+1)*n/ranks).
        let owner = (i * ranks) / n.max(1);
        out.insert(id, owner.min(ranks - 1));
    }
    out
}

/// Assigns owners by recursive coordinate bisection of block centers.
/// `ranks` need not be a power of two: each split divides proportionally.
pub fn rcb_partition(dir: &MeshDirectory, ranks: usize) -> BTreeMap<BlockId, usize> {
    assert!(ranks > 0);
    let params = dir.params();
    let mut items: Vec<(BlockId, [f64; 3])> =
        dir.iter().map(|(id, _)| (*id, id.center(params))).collect();
    let mut out = BTreeMap::new();
    rcb_recurse(&mut items, 0, ranks, 0, &mut out);
    out
}

fn rcb_recurse(
    items: &mut [(BlockId, [f64; 3])],
    rank_base: usize,
    ranks: usize,
    depth: usize,
    out: &mut BTreeMap<BlockId, usize>,
) {
    if ranks == 1 || items.is_empty() {
        for (id, _) in items.iter() {
            out.insert(*id, rank_base);
        }
        return;
    }
    // Split along the widest extent (ties broken by axis order, with the
    // block id as a deterministic sort tiebreak).
    let mut axis = depth % 3;
    let mut best_span = f64::MIN;
    for d in 0..3 {
        let (lo, hi) = items.iter().fold((f64::MAX, f64::MIN), |(lo, hi), (_, c)| {
            (lo.min(c[d]), hi.max(c[d]))
        });
        let span = hi - lo;
        if span > best_span + 1e-12 {
            best_span = span;
            axis = d;
        }
    }
    items.sort_by(|a, b| {
        a.1[axis]
            .partial_cmp(&b.1[axis])
            .unwrap()
            .then_with(|| a.0.cmp(&b.0))
    });
    let left_ranks = ranks / 2;
    let split = items.len() * left_ranks / ranks;
    let (left, right) = items.split_at_mut(split);
    rcb_recurse(left, rank_base, left_ranks, depth + 1, out);
    rcb_recurse(
        right,
        rank_base + left_ranks,
        ranks - left_ranks,
        depth + 1,
        out,
    );
}

/// Measures imbalance of an assignment: `max_count / mean_count`.
pub fn imbalance(assignment: &BTreeMap<BlockId, usize>, ranks: usize) -> f64 {
    let mut counts = vec![0usize; ranks];
    for &r in assignment.values() {
        counts[r] += 1;
    }
    let max = *counts.iter().max().unwrap_or(&0) as f64;
    let mean = assignment.len() as f64 / ranks as f64;
    if mean == 0.0 {
        1.0
    } else {
        max / mean
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::object::Object;
    use crate::params::MeshParams;

    fn refined_dir() -> MeshDirectory {
        let p = MeshParams {
            npx: 2,
            npy: 2,
            npz: 1,
            init_x: 2,
            init_y: 2,
            init_z: 4,
            ..MeshParams::test_small()
        };
        let mut d = MeshDirectory::initial(p);
        let sphere = Object::sphere([0.3, 0.3, 0.3], 0.2, [0.0; 3]);
        d.refine_to_fixpoint(&[sphere]);
        d
    }

    #[test]
    fn sfc_partition_is_balanced_permutation() {
        let d = refined_dir();
        for ranks in [1, 2, 3, 4, 7] {
            let part = sfc_partition(&d, ranks);
            assert_eq!(
                part.len(),
                d.len(),
                "partition must cover every block exactly once"
            );
            let imb = imbalance(&part, ranks);
            assert!(
                imb < 1.0 + ranks as f64 / d.len() as f64 + 1e-9,
                "imbalance {imb} too high for {ranks} ranks"
            );
        }
    }

    #[test]
    fn sfc_assigns_contiguous_morton_runs() {
        let d = refined_dir();
        let part = sfc_partition(&d, 4);
        let params = d.params();
        let mut ordered: Vec<(u128, usize)> = part
            .iter()
            .map(|(id, &r)| (id.morton_key(params), r))
            .collect();
        ordered.sort_unstable();
        // Owners must be non-decreasing along the curve.
        for w in ordered.windows(2) {
            assert!(w[0].1 <= w[1].1, "SFC runs are not contiguous");
        }
    }

    #[test]
    fn rcb_partition_covers_and_balances() {
        let d = refined_dir();
        for ranks in [2, 3, 4, 6] {
            let part = rcb_partition(&d, ranks);
            assert_eq!(part.len(), d.len());
            let imb = imbalance(&part, ranks);
            assert!(imb < 1.35, "RCB imbalance {imb} too high for {ranks} ranks");
        }
    }

    #[test]
    fn partitions_are_deterministic() {
        let d = refined_dir();
        assert_eq!(sfc_partition(&d, 4), sfc_partition(&d, 4));
        assert_eq!(rcb_partition(&d, 4), rcb_partition(&d, 4));
    }

    #[test]
    fn single_rank_owns_everything() {
        let d = refined_dir();
        let part = sfc_partition(&d, 1);
        assert!(part.values().all(|&r| r == 0));
    }
}
