//! Stencil kernels.
//!
//! miniAMR's computation phase applies an averaging stencil to every
//! variable of every block. The paper's experiments use the 7-point
//! stencil (a cell becomes the average of itself and its six face
//! neighbors, §II-A); the 27-point variant from the reference
//! implementation is provided as well. Both read the ghost layer, so the
//! communicate phase must run first.

use crate::data::{BlockData, BlockLayout};
use std::ops::Range;

/// Which stencil the computation phase applies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StencilKind {
    /// Average of the cell and its 6 face neighbors.
    SevenPoint,
    /// Average of the full 3×3×3 neighborhood.
    TwentySevenPoint,
}

impl StencilKind {
    /// Floating-point operations per cell (adds + one multiply), used for
    /// the GFLOPS accounting that Figure 4 reports.
    pub fn flops_per_cell(self) -> u64 {
        match self {
            // 6 adds + 1 multiply by 1/7.
            StencilKind::SevenPoint => 7,
            StencilKind::TwentySevenPoint => 27,
        }
    }
}

/// Applies the stencil to variables `vars` of a block, in place.
///
/// The update is Jacobi-style: new values are computed from a snapshot
/// of the old ones (miniAMR computes into a `work` array and copies
/// back), so the result is independent of traversal order.
///
/// The 27-point variant reads edge and corner ghost cells, which the
/// face-only exchange never fills; they are populated first with the
/// zero-gradient diagonal fill (clamp the coordinates to the interior),
/// identically in every variant, so results stay bitwise comparable.
pub fn apply_stencil(block: &BlockData, layout: &BlockLayout, kind: StencilKind, vars: Range<usize>) {
    let (nx, ny, nz) = (layout.nx, layout.ny, layout.nz);
    let mut work = vec![0.0f64; nx * ny * nz];
    let vstart = vars.start;
    let slab = block.buf.slice(layout.var_elem_range(vars.clone()));
    slab.with_write(|data| {
        for v in vars.map(|v| v - vstart) {
            if kind == StencilKind::TwentySevenPoint {
                fill_diagonal_ghosts(data, layout, v);
            }
            match kind {
                StencilKind::SevenPoint => {
                    for z in 1..=nz {
                        for y in 1..=ny {
                            for x in 1..=nx {
                                let sum = data[layout.idx(v, z, y, x)]
                                    + data[layout.idx(v, z, y, x - 1)]
                                    + data[layout.idx(v, z, y, x + 1)]
                                    + data[layout.idx(v, z, y - 1, x)]
                                    + data[layout.idx(v, z, y + 1, x)]
                                    + data[layout.idx(v, z - 1, y, x)]
                                    + data[layout.idx(v, z + 1, y, x)];
                                work[((z - 1) * ny + (y - 1)) * nx + (x - 1)] = sum / 7.0;
                            }
                        }
                    }
                }
                StencilKind::TwentySevenPoint => {
                    for z in 1..=nz {
                        for y in 1..=ny {
                            for x in 1..=nx {
                                let mut sum = 0.0;
                                for dz in 0..3 {
                                    for dy in 0..3 {
                                        for dx in 0..3 {
                                            sum += data[layout.idx(v, z + dz - 1, y + dy - 1, x + dx - 1)];
                                        }
                                    }
                                }
                                work[((z - 1) * ny + (y - 1)) * nx + (x - 1)] = sum / 27.0;
                            }
                        }
                    }
                }
            }
            for z in 1..=nz {
                for y in 1..=ny {
                    let wbase = ((z - 1) * ny + (y - 1)) * nx;
                    let dbase = layout.idx(v, z, y, 1);
                    data[dbase..dbase + nx].copy_from_slice(&work[wbase..wbase + nx]);
                }
            }
        }
    });
}

/// Fills ghost cells with two or more ghost coordinates (edges and
/// corners) by clamping to the nearest interior cell.
fn fill_diagonal_ghosts(data: &mut [f64], layout: &BlockLayout, v: usize) {
    let (nx, ny, nz) = (layout.nx, layout.ny, layout.nz);
    let ghostly = |c: usize, n: usize| c == 0 || c == n + 1;
    let clamp = |c: usize, n: usize| c.max(1).min(n);
    for z in 0..=nz + 1 {
        for y in 0..=ny + 1 {
            for x in 0..=nx + 1 {
                let g = ghostly(x, nx) as u8 + ghostly(y, ny) as u8 + ghostly(z, nz) as u8;
                if g >= 2 {
                    data[layout.idx(v, z, y, x)] =
                        data[layout.idx(v, clamp(z, nz), clamp(y, ny), clamp(x, nx))];
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block_id::BlockId;
    use crate::params::MeshParams;

    fn setup() -> (MeshParams, BlockLayout, BlockData) {
        let p = MeshParams::test_small();
        let l = BlockLayout::of(&p);
        let b = BlockData::initialized(BlockId::new(0, 0, 0, 0), &p);
        (p, l, b)
    }

    /// A constant field with constant ghosts is a fixed point of both
    /// stencils.
    #[test]
    fn constant_field_is_fixed_point() {
        let (p, l, b) = setup();
        b.buf.full().with_write(|d| d.iter_mut().for_each(|v| *v = 3.25));
        for kind in [StencilKind::SevenPoint, StencilKind::TwentySevenPoint] {
            apply_stencil(&b, &l, kind, 0..p.num_vars);
            b.buf.full().with_read(|d| {
                for z in 1..=l.nz {
                    for y in 1..=l.ny {
                        for x in 1..=l.nx {
                            assert_eq!(d[l.idx(0, z, y, x)], 3.25);
                        }
                    }
                }
            });
        }
    }

    /// The stencil must be Jacobi (order-independent): applying it to a
    /// linear ramp in x keeps the ramp in the interior away from edges.
    #[test]
    fn seven_point_preserves_linear_profile_in_interior() {
        let (_p, l, b) = setup();
        b.buf.full().with_write(|d| {
            for z in 0..=l.nz + 1 {
                for y in 0..=l.ny + 1 {
                    for x in 0..=l.nx + 1 {
                        d[l.idx(0, z, y, x)] = x as f64;
                    }
                }
            }
        });
        apply_stencil(&b, &l, StencilKind::SevenPoint, 0..1);
        b.buf.full().with_read(|d| {
            for z in 1..=l.nz {
                for y in 1..=l.ny {
                    for x in 1..=l.nx {
                        // avg(x, x−1, x+1, x×4) = x
                        assert!((d[l.idx(0, z, y, x)] - x as f64).abs() < 1e-12);
                    }
                }
            }
        });
    }

    /// A Gauss–Seidel-style in-place sweep would smear values directionally;
    /// check symmetry instead: a symmetric field stays symmetric.
    #[test]
    fn stencil_is_traversal_order_independent() {
        let (_p, l, b) = setup();
        b.buf.full().with_write(|d| {
            for z in 0..=l.nz + 1 {
                for y in 0..=l.ny + 1 {
                    for x in 0..=l.nx + 1 {
                        // Symmetric under x ↔ nx+1−x.
                        let xs = x.min(l.nx + 1 - x) as f64;
                        d[l.idx(0, z, y, x)] = xs * xs;
                    }
                }
            }
        });
        apply_stencil(&b, &l, StencilKind::SevenPoint, 0..1);
        b.buf.full().with_read(|d| {
            for z in 1..=l.nz {
                for y in 1..=l.ny {
                    for x in 1..=l.nx {
                        let mirror = l.nx + 1 - x;
                        assert!(
                            (d[l.idx(0, z, y, x)] - d[l.idx(0, z, y, mirror)]).abs() < 1e-12,
                            "in-place sweep broke symmetry"
                        );
                    }
                }
            }
        });
    }

    #[test]
    fn only_selected_vars_change() {
        let (p, l, b) = setup();
        let before = b.pack_interior(&l, 0..p.num_vars);
        apply_stencil(&b, &l, StencilKind::SevenPoint, 0..1);
        let after = b.pack_interior(&l, 0..p.num_vars);
        let per_var = l.cells();
        assert_ne!(&before[..per_var], &after[..per_var], "var 0 should change");
        assert_eq!(&before[per_var..], &after[per_var..], "var 1 must be untouched");
    }
}
