//! Stencil kernels.
//!
//! miniAMR's computation phase applies an averaging stencil to every
//! variable of every block. The paper's experiments use the 7-point
//! stencil (a cell becomes the average of itself and its six face
//! neighbors, §II-A); the 27-point variant from the reference
//! implementation is provided as well. Both read the ghost layer, so the
//! communicate phase must run first.
//!
//! ## Memory strategy
//!
//! The production kernel ([`apply_stencil`] / [`apply_stencil_with`]) is
//! allocation-free in steady state: instead of materialising a full
//! `nx·ny·nz` work array per call, it slides a rotating pair of
//! `(ny+2)·(nx+2)` plane snapshots through the block. When plane `z` is
//! being updated, `prev` holds the *old* values of plane `z−1` (already
//! overwritten in the block), `cur` holds the old values of plane `z`
//! (overwritten as the sweep advances), and plane `z+1` is read straight
//! from the block, where it is still untouched. Ghost planes are never
//! written, so the update stays Jacobi regardless of traversal order.
//!
//! The scratch planes live in a [`KernelWorkspace`] that callers (or a
//! thread-local fallback) reuse across calls. All inner loops run over
//! row-contiguous slices, so the per-cell `layout.idx` multiplies are
//! hoisted out and the compiler can vectorise.
//!
//! The floating-point summation order of [`apply_stencil_reference`] is
//! preserved **exactly** — additions happen in the same sequence, so all
//! three run variants keep producing bitwise-identical checksums (see the
//! bitwise-equality proptests in `crates/mesh/tests/`).

use crate::data::{BlockData, BlockLayout};
use std::cell::RefCell;
use std::ops::Range;

/// Which stencil the computation phase applies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StencilKind {
    /// Average of the cell and its 6 face neighbors.
    SevenPoint,
    /// Average of the full 3×3×3 neighborhood.
    TwentySevenPoint,
}

impl StencilKind {
    /// Floating-point operations per cell (adds + one multiply), used for
    /// the GFLOPS accounting that Figure 4 reports.
    pub fn flops_per_cell(self) -> u64 {
        match self {
            // 6 adds + 1 multiply by 1/7.
            StencilKind::SevenPoint => 7,
            StencilKind::TwentySevenPoint => 27,
        }
    }
}

/// Reusable scratch memory for the stencil kernels.
///
/// Holds the two rotating plane snapshots. Grows to the largest plane it
/// has seen and never shrinks, so a workspace reused across the blocks of
/// a rank performs zero allocations once warm.
#[derive(Debug, Default)]
pub struct KernelWorkspace {
    prev: Vec<f64>,
    cur: Vec<f64>,
}

impl KernelWorkspace {
    /// Creates an empty workspace; planes are grown on first use.
    pub fn new() -> KernelWorkspace {
        KernelWorkspace::default()
    }

    /// Creates a workspace pre-sized for blocks of `layout`, so even the
    /// first kernel call performs no allocation.
    pub fn for_layout(layout: &BlockLayout) -> KernelWorkspace {
        let plane = (layout.ny + 2) * (layout.nx + 2);
        KernelWorkspace {
            prev: vec![0.0; plane],
            cur: vec![0.0; plane],
        }
    }

    /// Bytes currently held by the scratch planes.
    pub fn scratch_bytes(&self) -> usize {
        (self.prev.capacity() + self.cur.capacity()) * std::mem::size_of::<f64>()
    }

    /// Both planes, grown to `plane_elems` if needed.
    fn planes(&mut self, plane_elems: usize) -> (&mut [f64], &mut [f64]) {
        if self.prev.len() < plane_elems {
            self.prev.resize(plane_elems, 0.0);
        }
        if self.cur.len() < plane_elems {
            self.cur.resize(plane_elems, 0.0);
        }
        (&mut self.prev[..plane_elems], &mut self.cur[..plane_elems])
    }
}

thread_local! {
    /// Fallback workspace for [`apply_stencil`] callers that do not thread
    /// their own; per-thread so worker tasks never contend.
    static THREAD_WORKSPACE: RefCell<KernelWorkspace> = RefCell::new(KernelWorkspace::new());
}

/// Applies the stencil to variables `vars` of a block, in place.
///
/// The update is Jacobi-style: new values are computed from a snapshot of
/// the old ones, so the result is independent of traversal order. Scratch
/// comes from a per-thread [`KernelWorkspace`]; use
/// [`apply_stencil_with`] to supply your own.
///
/// The 27-point variant reads edge and corner ghost cells, which the
/// face-only exchange never fills; they are populated first with the
/// zero-gradient diagonal fill (clamp the coordinates to the interior),
/// identically in every variant, so results stay bitwise comparable.
pub fn apply_stencil(
    block: &BlockData,
    layout: &BlockLayout,
    kind: StencilKind,
    vars: Range<usize>,
) {
    THREAD_WORKSPACE.with(|ws| {
        apply_stencil_with(block, layout, kind, vars, &mut ws.borrow_mut());
    });
}

/// [`apply_stencil`] with caller-supplied scratch memory.
pub fn apply_stencil_with(
    block: &BlockData,
    layout: &BlockLayout,
    kind: StencilKind,
    vars: Range<usize>,
    ws: &mut KernelWorkspace,
) {
    let (nx, ny, nz) = (layout.nx, layout.ny, layout.nz);
    let row = nx + 2;
    let plane = (ny + 2) * row;
    let vstart = vars.start;
    let (mut prev, mut cur) = ws.planes(plane);
    let slab = block.buf.slice(layout.var_elem_range(vars.clone()));
    slab.with_write(|data| {
        for v in vars.map(|v| v - vstart) {
            if kind == StencilKind::TwentySevenPoint {
                fill_diagonal_ghosts(data, layout, v);
            }
            let vbase = v * (nz + 2) * plane;
            // Seed `prev` with the z=0 ghost plane (never written, but
            // copied so the per-z rotation below stays uniform).
            prev.copy_from_slice(&data[vbase..vbase + plane]);
            for z in 1..=nz {
                // Snapshot the old plane z before overwriting it.
                cur.copy_from_slice(&data[vbase + z * plane..vbase + (z + 1) * plane]);
                // Split so plane z (written) and plane z+1 (read) can be
                // borrowed simultaneously; `hi` starts at plane z+1.
                let (lo, hi) = data.split_at_mut(vbase + (z + 1) * plane);
                match kind {
                    StencilKind::SevenPoint => {
                        for y in 1..=ny {
                            let r = y * row;
                            // Row slices centered on x=1..=nx; index i = x−1.
                            let c = &cur[r + 1..r + 1 + nx];
                            let xm = &cur[r..r + nx];
                            let xp = &cur[r + 2..r + 2 + nx];
                            let ym = &cur[r - row + 1..r - row + 1 + nx];
                            let yp = &cur[r + row + 1..r + row + 1 + nx];
                            let zm = &prev[r + 1..r + 1 + nx];
                            let zp = &hi[r + 1..r + 1 + nx];
                            let out = &mut lo[vbase + z * plane + r + 1..][..nx];
                            for i in 0..nx {
                                // Same summation order as the reference:
                                // center, x−1, x+1, y−1, y+1, z−1, z+1.
                                let sum = c[i] + xm[i] + xp[i] + ym[i] + yp[i] + zm[i] + zp[i];
                                out[i] = sum / 7.0;
                            }
                        }
                    }
                    StencilKind::TwentySevenPoint => {
                        for y in 1..=ny {
                            let r = y * row;
                            // Nine rows in reference order: dz ∈ {z−1, z, z+1}
                            // outermost, then dy ∈ {y−1, y, y+1}; each row is
                            // summed dx ∈ {x−1, x, x+1}. Index i = x−1, so a
                            // row slice starting at x−1 covers all three taps
                            // as r[i], r[i+1], r[i+2].
                            let rows: [&[f64]; 9] = [
                                &prev[r - row..r - row + nx + 2],
                                &prev[r..r + nx + 2],
                                &prev[r + row..r + row + nx + 2],
                                &cur[r - row..r - row + nx + 2],
                                &cur[r..r + nx + 2],
                                &cur[r + row..r + row + nx + 2],
                                &hi[r - row..r - row + nx + 2],
                                &hi[r..r + nx + 2],
                                &hi[r + row..r + row + nx + 2],
                            ];
                            let out = &mut lo[vbase + z * plane + r + 1..][..nx];
                            for i in 0..nx {
                                // Accumulate from 0.0 exactly like the
                                // reference's `sum += …` loop (matters for
                                // the sign of zero).
                                let mut sum = 0.0;
                                for rw in rows {
                                    sum += rw[i];
                                    sum += rw[i + 1];
                                    sum += rw[i + 2];
                                }
                                out[i] = sum / 27.0;
                            }
                        }
                    }
                }
                std::mem::swap(&mut prev, &mut cur);
            }
        }
    });
}

/// The original full-work-array kernel, kept as the semantic reference.
///
/// Allocates an `nx·ny·nz` scratch array per call; the bitwise-equality
/// tests and the kernel benchmarks compare [`apply_stencil`] against it.
pub fn apply_stencil_reference(
    block: &BlockData,
    layout: &BlockLayout,
    kind: StencilKind,
    vars: Range<usize>,
) {
    let (nx, ny, nz) = (layout.nx, layout.ny, layout.nz);
    let mut work = vec![0.0f64; nx * ny * nz];
    let vstart = vars.start;
    let slab = block.buf.slice(layout.var_elem_range(vars.clone()));
    slab.with_write(|data| {
        for v in vars.map(|v| v - vstart) {
            if kind == StencilKind::TwentySevenPoint {
                fill_diagonal_ghosts(data, layout, v);
            }
            match kind {
                StencilKind::SevenPoint => {
                    for z in 1..=nz {
                        for y in 1..=ny {
                            for x in 1..=nx {
                                let sum = data[layout.idx(v, z, y, x)]
                                    + data[layout.idx(v, z, y, x - 1)]
                                    + data[layout.idx(v, z, y, x + 1)]
                                    + data[layout.idx(v, z, y - 1, x)]
                                    + data[layout.idx(v, z, y + 1, x)]
                                    + data[layout.idx(v, z - 1, y, x)]
                                    + data[layout.idx(v, z + 1, y, x)];
                                work[((z - 1) * ny + (y - 1)) * nx + (x - 1)] = sum / 7.0;
                            }
                        }
                    }
                }
                StencilKind::TwentySevenPoint => {
                    for z in 1..=nz {
                        for y in 1..=ny {
                            for x in 1..=nx {
                                let mut sum = 0.0;
                                for dz in 0..3 {
                                    for dy in 0..3 {
                                        for dx in 0..3 {
                                            sum += data
                                                [layout.idx(v, z + dz - 1, y + dy - 1, x + dx - 1)];
                                        }
                                    }
                                }
                                work[((z - 1) * ny + (y - 1)) * nx + (x - 1)] = sum / 27.0;
                            }
                        }
                    }
                }
            }
            for z in 1..=nz {
                for y in 1..=ny {
                    let wbase = ((z - 1) * ny + (y - 1)) * nx;
                    let dbase = layout.idx(v, z, y, 1);
                    data[dbase..dbase + nx].copy_from_slice(&work[wbase..wbase + nx]);
                }
            }
        }
    });
}

/// Fills ghost cells with two or more ghost coordinates (edges and
/// corners) by clamping to the nearest interior cell.
fn fill_diagonal_ghosts(data: &mut [f64], layout: &BlockLayout, v: usize) {
    let (nx, ny, nz) = (layout.nx, layout.ny, layout.nz);
    let ghostly = |c: usize, n: usize| c == 0 || c == n + 1;
    let clamp = |c: usize, n: usize| c.max(1).min(n);
    for z in 0..=nz + 1 {
        for y in 0..=ny + 1 {
            for x in 0..=nx + 1 {
                let g = ghostly(x, nx) as u8 + ghostly(y, ny) as u8 + ghostly(z, nz) as u8;
                if g >= 2 {
                    data[layout.idx(v, z, y, x)] =
                        data[layout.idx(v, clamp(z, nz), clamp(y, ny), clamp(x, nx))];
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block_id::BlockId;
    use crate::params::MeshParams;

    fn setup() -> (MeshParams, BlockLayout, BlockData) {
        let p = MeshParams::test_small();
        let l = BlockLayout::of(&p);
        let b = BlockData::initialized(BlockId::new(0, 0, 0, 0), &p);
        (p, l, b)
    }

    /// A constant field with constant ghosts is a fixed point of both
    /// stencils.
    #[test]
    fn constant_field_is_fixed_point() {
        let (p, l, b) = setup();
        b.buf
            .full()
            .with_write(|d| d.iter_mut().for_each(|v| *v = 3.25));
        for kind in [StencilKind::SevenPoint, StencilKind::TwentySevenPoint] {
            apply_stencil(&b, &l, kind, 0..p.num_vars);
            b.buf.full().with_read(|d| {
                for z in 1..=l.nz {
                    for y in 1..=l.ny {
                        for x in 1..=l.nx {
                            assert_eq!(d[l.idx(0, z, y, x)], 3.25);
                        }
                    }
                }
            });
        }
    }

    /// The stencil must be Jacobi (order-independent): applying it to a
    /// linear ramp in x keeps the ramp in the interior away from edges.
    #[test]
    fn seven_point_preserves_linear_profile_in_interior() {
        let (_p, l, b) = setup();
        b.buf.full().with_write(|d| {
            for z in 0..=l.nz + 1 {
                for y in 0..=l.ny + 1 {
                    for x in 0..=l.nx + 1 {
                        d[l.idx(0, z, y, x)] = x as f64;
                    }
                }
            }
        });
        apply_stencil(&b, &l, StencilKind::SevenPoint, 0..1);
        b.buf.full().with_read(|d| {
            for z in 1..=l.nz {
                for y in 1..=l.ny {
                    for x in 1..=l.nx {
                        // avg(x, x−1, x+1, x×4) = x
                        assert!((d[l.idx(0, z, y, x)] - x as f64).abs() < 1e-12);
                    }
                }
            }
        });
    }

    /// A Gauss–Seidel-style in-place sweep would smear values directionally;
    /// check symmetry instead: a symmetric field stays symmetric.
    #[test]
    fn stencil_is_traversal_order_independent() {
        let (_p, l, b) = setup();
        b.buf.full().with_write(|d| {
            for z in 0..=l.nz + 1 {
                for y in 0..=l.ny + 1 {
                    for x in 0..=l.nx + 1 {
                        // Symmetric under x ↔ nx+1−x.
                        let xs = x.min(l.nx + 1 - x) as f64;
                        d[l.idx(0, z, y, x)] = xs * xs;
                    }
                }
            }
        });
        apply_stencil(&b, &l, StencilKind::SevenPoint, 0..1);
        b.buf.full().with_read(|d| {
            for z in 1..=l.nz {
                for y in 1..=l.ny {
                    for x in 1..=l.nx {
                        let mirror = l.nx + 1 - x;
                        assert!(
                            (d[l.idx(0, z, y, x)] - d[l.idx(0, z, y, mirror)]).abs() < 1e-12,
                            "in-place sweep broke symmetry"
                        );
                    }
                }
            }
        });
    }

    #[test]
    fn only_selected_vars_change() {
        let (p, l, b) = setup();
        let before = b.pack_interior(&l, 0..p.num_vars);
        apply_stencil(&b, &l, StencilKind::SevenPoint, 0..1);
        let after = b.pack_interior(&l, 0..p.num_vars);
        let per_var = l.cells();
        assert_ne!(&before[..per_var], &after[..per_var], "var 0 should change");
        assert_eq!(
            &before[per_var..],
            &after[per_var..],
            "var 1 must be untouched"
        );
    }

    /// Fills a block with a deterministic, irregular pattern (bit-mixed,
    /// mixed signs and magnitudes) so FP-order differences cannot hide.
    fn scramble(b: &BlockData, seed: u64) {
        b.buf.full().with_write(|d| {
            let mut s = seed | 1;
            for v in d.iter_mut() {
                // xorshift64*
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                let m = s.wrapping_mul(0x2545_F491_4F6C_DD1D);
                *v = ((m >> 11) as f64 / (1u64 << 53) as f64 - 0.5) * 1.0e3;
            }
        });
    }

    /// The plane-sliding kernel must agree **bitwise** with the reference
    /// full-work-array kernel, for both stencils and var subranges.
    #[test]
    fn plane_sliding_matches_reference_bitwise() {
        for kind in [StencilKind::SevenPoint, StencilKind::TwentySevenPoint] {
            for (vlo, vhi) in [(0usize, 2usize), (1, 2)] {
                let (_p, l, a) = setup();
                let (_p2, _l2, b) = setup();
                scramble(&a, 0xBEEF ^ (vlo as u64) << 8 ^ kind as u64);
                // Identical contents in both blocks.
                let bits = a.buf.full().to_vec();
                b.buf.full().with_write(|d| d.copy_from_slice(&bits));

                let mut ws = KernelWorkspace::new();
                apply_stencil_with(&a, &l, kind, vlo..vhi, &mut ws);
                apply_stencil_reference(&b, &l, kind, vlo..vhi);

                let got = a.buf.full().to_vec();
                let want = b.buf.full().to_vec();
                for (i, (g, w)) in got.iter().zip(&want).enumerate() {
                    assert_eq!(
                        g.to_bits(),
                        w.to_bits(),
                        "bitwise mismatch at elem {i} ({kind:?}, vars {vlo}..{vhi})"
                    );
                }
            }
        }
    }

    /// Repeated calls through one workspace must not allocate after the
    /// first: the scratch planes keep their capacity.
    #[test]
    fn workspace_is_reused_across_calls() {
        let (_p, l, b) = setup();
        let mut ws = KernelWorkspace::for_layout(&l);
        let bytes_before = ws.scratch_bytes();
        for _ in 0..4 {
            apply_stencil_with(&b, &l, StencilKind::SevenPoint, 0..1, &mut ws);
            apply_stencil_with(&b, &l, StencilKind::TwentySevenPoint, 0..1, &mut ws);
        }
        assert_eq!(
            ws.scratch_bytes(),
            bytes_before,
            "workspace grew after warmup"
        );
    }
}
