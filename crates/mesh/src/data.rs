//! Block cell data: storage layout, initialization, refinement data
//! operators (split prolongation, merge restriction) and (de)serialization
//! for block exchange.
//!
//! Following the layout change Rico et al. introduced (and the paper
//! keeps, §II-A), every block stores **all its variables in one
//! contiguous array**, variable-major:
//!
//! ```text
//! idx(v, z, y, x) = ((v*(nz+2) + z)*(ny+2) + y)*(nx+2) + x
//! ```
//!
//! with a one-cell ghost halo in each dimension (interior indices
//! `1..=n`). Variable-major order makes "a range of variables of this
//! block" — the dependency granularity of §IV-D — a contiguous element
//! range, so task dependencies and buffer regions line up exactly.

use crate::block_id::{BlockId, Dir, Side};
use crate::params::MeshParams;
use shmem::SharedBuffer;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Index arithmetic for one block's data array.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockLayout {
    /// Interior cells in X.
    pub nx: usize,
    /// Interior cells in Y.
    pub ny: usize,
    /// Interior cells in Z.
    pub nz: usize,
    /// Variables per cell.
    pub num_vars: usize,
}

impl BlockLayout {
    /// Layout from mesh parameters.
    pub fn of(params: &MeshParams) -> BlockLayout {
        BlockLayout {
            nx: params.nx,
            ny: params.ny,
            nz: params.nz,
            num_vars: params.num_vars,
        }
    }

    /// Total elements (cells with ghosts × variables).
    #[inline]
    pub fn elems(&self) -> usize {
        (self.nx + 2) * (self.ny + 2) * (self.nz + 2) * self.num_vars
    }

    /// Elements per variable (one ghosted cell grid).
    #[inline]
    pub fn elems_per_var(&self) -> usize {
        (self.nx + 2) * (self.ny + 2) * (self.nz + 2)
    }

    /// Flat index of `(v, z, y, x)`; coordinates include ghosts (0 and
    /// `n+1` are ghost layers).
    #[inline]
    pub fn idx(&self, v: usize, z: usize, y: usize, x: usize) -> usize {
        debug_assert!(
            v < self.num_vars && z <= self.nz + 1 && y <= self.ny + 1 && x <= self.nx + 1
        );
        ((v * (self.nz + 2) + z) * (self.ny + 2) + y) * (self.nx + 2) + x
    }

    /// Element range covering variables `vars` (contiguous by layout).
    #[inline]
    pub fn var_elem_range(&self, vars: std::ops::Range<usize>) -> std::ops::Range<usize> {
        let per = self.elems_per_var();
        vars.start * per..vars.end * per
    }

    /// Interior cell count per variable.
    #[inline]
    pub fn cells(&self) -> usize {
        self.nx * self.ny * self.nz
    }

    /// Cell count of one X/Y/Z face plane (per variable).
    #[inline]
    pub fn face_cells(&self, dir: Dir) -> usize {
        match dir {
            Dir::X => self.ny * self.nz,
            Dir::Y => self.nx * self.nz,
            Dir::Z => self.nx * self.ny,
        }
    }
}

/// Block uids start at the high bit: they share the task runtime's
/// dependency-object id space with `taskrt::ObjId::fresh` ids (both end
/// up as claim-table keys and depsan object ids), but the two counters
/// are independent. Starting this one at `1 << 63` keeps the spaces
/// disjoint — an aliased id would invent dependency edges between
/// unrelated tasks and phantom races under the sanitizer.
static NEXT_UID: AtomicU64 = AtomicU64::new((1 << 63) + 1);

/// One block's cell data. The buffer is shared (`Arc`) so tasks can hold
/// region handles; the `uid` identifies this allocation in the task
/// dependency space.
#[derive(Clone)]
pub struct BlockData {
    /// Structural identity (level + coordinates).
    pub id: BlockId,
    /// Unique id of this data allocation (dependency object id).
    pub uid: u64,
    /// The ghosted, variable-major cell array.
    pub buf: Arc<SharedBuffer<f64>>,
}

impl std::fmt::Debug for BlockData {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "BlockData({:?}, uid {})", self.id, self.uid)
    }
}

/// The analytic initial condition: smooth, positive, variable-dependent,
/// deterministic — so any refinement/ownership history yields comparable
/// checksums.
pub fn initial_value(v: usize, pos: [f64; 3]) -> f64 {
    let phase = 1.3 * pos[0] + 2.1 * pos[1] + 0.7 * pos[2] + 0.37 * v as f64;
    2.0 + phase.sin()
}

impl BlockData {
    /// Allocates a zeroed block.
    pub fn empty(id: BlockId, params: &MeshParams) -> BlockData {
        let layout = BlockLayout::of(params);
        let uid = NEXT_UID.fetch_add(1, Ordering::Relaxed);
        let buf = SharedBuffer::new(layout.elems());
        // The uid is the dependency object id for this allocation; binding
        // it lets the sanitizer map buffer accesses back to declared task
        // regions.
        buf.bind_obj(uid);
        BlockData { id, uid, buf }
    }

    /// Allocates a block and fills the interior with the analytic initial
    /// condition evaluated at cell centers.
    pub fn initialized(id: BlockId, params: &MeshParams) -> BlockData {
        let block = BlockData::empty(id, params);
        let layout = BlockLayout::of(params);
        let (lo, hi) = id.bounds(params);
        let dx = (hi[0] - lo[0]) / layout.nx as f64;
        let dy = (hi[1] - lo[1]) / layout.ny as f64;
        let dz = (hi[2] - lo[2]) / layout.nz as f64;
        block.buf.full().with_write(|data| {
            for v in 0..layout.num_vars {
                for z in 1..=layout.nz {
                    let pz = lo[2] + (z as f64 - 0.5) * dz;
                    for y in 1..=layout.ny {
                        let py = lo[1] + (y as f64 - 0.5) * dy;
                        for x in 1..=layout.nx {
                            let px = lo[0] + (x as f64 - 0.5) * dx;
                            data[layout.idx(v, z, y, x)] = initial_value(v, [px, py, pz]);
                        }
                    }
                }
            }
        });
        block
    }

    /// Copies the interior cells of variables `vars` into a payload (the
    /// block-exchange wire format; ghosts are not transmitted).
    pub fn pack_interior(&self, layout: &BlockLayout, vars: std::ops::Range<usize>) -> Vec<f64> {
        let mut out = vec![0.0; vars.len() * layout.cells()];
        self.pack_interior_into(layout, vars, &mut out);
        out
    }

    /// [`BlockData::pack_interior`] writing into a caller-supplied buffer
    /// of exactly `vars.len() · cells` elements (e.g. a pooled buffer).
    pub fn pack_interior_into(
        &self,
        layout: &BlockLayout,
        vars: std::ops::Range<usize>,
        out: &mut [f64],
    ) {
        assert_eq!(
            out.len(),
            vars.len() * layout.cells(),
            "payload size mismatch"
        );
        let mut i = 0;
        let vstart = vars.start;
        let slab = self.buf.slice(layout.var_elem_range(vars.clone()));
        slab.with_read(|data| {
            for v in vars.map(|v| v - vstart) {
                for z in 1..=layout.nz {
                    for y in 1..=layout.ny {
                        let base = layout.idx(v, z, y, 1);
                        out[i..i + layout.nx].copy_from_slice(&data[base..base + layout.nx]);
                        i += layout.nx;
                    }
                }
            }
        });
    }

    /// Writes a payload produced by [`BlockData::pack_interior`] back into
    /// the interior cells.
    pub fn unpack_interior(
        &self,
        layout: &BlockLayout,
        vars: std::ops::Range<usize>,
        payload: &[f64],
    ) {
        assert_eq!(
            payload.len(),
            vars.len() * layout.cells(),
            "payload size mismatch"
        );
        let mut i = 0;
        let vstart = vars.start;
        let slab = self.buf.slice(layout.var_elem_range(vars.clone()));
        slab.with_write(|data| {
            for v in vars.map(|v| v - vstart) {
                for z in 1..=layout.nz {
                    for y in 1..=layout.ny {
                        let base = layout.idx(v, z, y, 1);
                        data[base..base + layout.nx].copy_from_slice(&payload[i..i + layout.nx]);
                        i += layout.nx;
                    }
                }
            }
        });
    }

    /// Fills the ghost layer at a domain boundary with the zero-gradient
    /// condition (ghost = adjacent interior cell).
    pub fn fill_boundary_ghosts(
        &self,
        layout: &BlockLayout,
        dir: Dir,
        side: Side,
        vars: std::ops::Range<usize>,
    ) {
        let vstart = vars.start;
        let slab = self.buf.slice(layout.var_elem_range(vars.clone()));
        slab.with_write(|data| {
            for v in vars.map(|v| v - vstart) {
                match dir {
                    Dir::X => {
                        let (g, i) = match side {
                            Side::Lo => (0, 1),
                            Side::Hi => (layout.nx + 1, layout.nx),
                        };
                        for z in 1..=layout.nz {
                            for y in 1..=layout.ny {
                                data[layout.idx(v, z, y, g)] = data[layout.idx(v, z, y, i)];
                            }
                        }
                    }
                    Dir::Y => {
                        let (g, i) = match side {
                            Side::Lo => (0, 1),
                            Side::Hi => (layout.ny + 1, layout.ny),
                        };
                        for z in 1..=layout.nz {
                            for x in 1..=layout.nx {
                                data[layout.idx(v, z, g, x)] = data[layout.idx(v, z, i, x)];
                            }
                        }
                    }
                    Dir::Z => {
                        let (g, i) = match side {
                            Side::Lo => (0, 1),
                            Side::Hi => (layout.nz + 1, layout.nz),
                        };
                        for y in 1..=layout.ny {
                            for x in 1..=layout.nx {
                                data[layout.idx(v, g, y, x)] = data[layout.idx(v, i, y, x)];
                            }
                        }
                    }
                }
            }
        });
    }
}

/// Splits a block into its eight children (prolongation: each child cell
/// takes the value of the parent cell covering it). The heavy data copy
/// the paper taskifies in the refinement phase (§IV-B).
pub fn split_block(parent: &BlockData, params: &MeshParams) -> Vec<BlockData> {
    let layout = BlockLayout::of(params);
    let children = parent.id.children();
    let hx = layout.nx / 2;
    let hy = layout.ny / 2;
    let hz = layout.nz / 2;
    parent.buf.full().with_read(|pdata| {
        children
            .iter()
            .map(|&cid| {
                let child = BlockData::empty(cid, params);
                let ox = (cid.x % 2) as usize * hx;
                let oy = (cid.y % 2) as usize * hy;
                let oz = (cid.z % 2) as usize * hz;
                child.buf.full().with_write(|cdata| {
                    for v in 0..layout.num_vars {
                        for z in 1..=layout.nz {
                            let pz = oz + (z - 1) / 2 + 1;
                            for y in 1..=layout.ny {
                                let py = oy + (y - 1) / 2 + 1;
                                for x in 1..=layout.nx {
                                    let px = ox + (x - 1) / 2 + 1;
                                    cdata[layout.idx(v, z, y, x)] =
                                        pdata[layout.idx(v, pz, py, px)];
                                }
                            }
                        }
                    }
                });
                child
            })
            .collect()
    })
}

/// Merges eight children into their parent (restriction: each parent cell
/// is the average of the eight child cells covering it). `children` must
/// be in [`BlockId::children`] octant order.
pub fn merge_children(children: &[BlockData], params: &MeshParams) -> BlockData {
    assert_eq!(children.len(), 8, "merge needs exactly eight children");
    let layout = BlockLayout::of(params);
    let parent_id = children[0]
        .id
        .parent()
        .expect("children are not at level 0");
    for (i, c) in children.iter().enumerate() {
        assert_eq!(c.id.parent(), Some(parent_id), "mixed octets in merge");
        assert_eq!(c.id.octant(), i, "children must be in octant order");
    }
    let parent = BlockData::empty(parent_id, params);
    let hx = layout.nx / 2;
    let hy = layout.ny / 2;
    let hz = layout.nz / 2;
    parent.buf.full().with_write(|pdata| {
        for (ci, child) in children.iter().enumerate() {
            let ox = (ci % 2) * hx;
            let oy = ((ci / 2) % 2) * hy;
            let oz = (ci / 4) * hz;
            child.buf.full().with_read(|cdata| {
                for v in 0..layout.num_vars {
                    for z in 0..hz {
                        for y in 0..hy {
                            for x in 0..hx {
                                let mut sum = 0.0;
                                for (ddz, ddy, ddx) in [
                                    (0, 0, 0),
                                    (0, 0, 1),
                                    (0, 1, 0),
                                    (0, 1, 1),
                                    (1, 0, 0),
                                    (1, 0, 1),
                                    (1, 1, 0),
                                    (1, 1, 1),
                                ] {
                                    sum += cdata[layout.idx(
                                        v,
                                        2 * z + 1 + ddz,
                                        2 * y + 1 + ddy,
                                        2 * x + 1 + ddx,
                                    )];
                                }
                                pdata[layout.idx(v, oz + z + 1, oy + y + 1, ox + x + 1)] =
                                    sum / 8.0;
                            }
                        }
                    }
                }
            });
        }
    });
    parent
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> MeshParams {
        MeshParams::test_small()
    }

    #[test]
    fn layout_indexing_is_contiguous_per_var() {
        let l = BlockLayout {
            nx: 4,
            ny: 4,
            nz: 4,
            num_vars: 3,
        };
        assert_eq!(l.idx(0, 0, 0, 0), 0);
        assert_eq!(l.idx(0, 0, 0, 1), 1);
        assert_eq!(l.idx(1, 0, 0, 0), l.elems_per_var());
        assert_eq!(
            l.var_elem_range(1..3),
            l.elems_per_var()..3 * l.elems_per_var()
        );
        assert_eq!(l.elems(), 6 * 6 * 6 * 3);
    }

    #[test]
    fn initialized_block_interior_nonzero_ghosts_zero() {
        let p = params();
        let layout = BlockLayout::of(&p);
        let b = BlockData::initialized(BlockId::new(0, 0, 0, 0), &p);
        b.buf.full().with_read(|d| {
            assert!(d[layout.idx(0, 1, 1, 1)] > 0.5);
            assert_eq!(d[layout.idx(0, 0, 1, 1)], 0.0, "ghost should start zero");
        });
    }

    #[test]
    fn pack_unpack_roundtrip() {
        let p = params();
        let layout = BlockLayout::of(&p);
        let a = BlockData::initialized(BlockId::new(0, 1, 0, 1), &p);
        let payload = a.pack_interior(&layout, 0..p.num_vars);
        assert_eq!(payload.len(), p.num_vars * layout.cells());
        let b = BlockData::empty(a.id, &p);
        b.unpack_interior(&layout, 0..p.num_vars, &payload);
        assert_eq!(b.pack_interior(&layout, 0..p.num_vars), payload);
    }

    #[test]
    fn split_preserves_cell_averages() {
        let p = params();
        let layout = BlockLayout::of(&p);
        let parent = BlockData::initialized(BlockId::new(0, 0, 0, 0), &p);
        let children = split_block(&parent, &p);
        assert_eq!(children.len(), 8);
        // Prolongation copies values: the mean over all children's cells
        // equals the mean over the parent's cells exactly.
        let pmean: f64 =
            parent.pack_interior(&layout, 0..1).iter().sum::<f64>() / layout.cells() as f64;
        let csum: f64 = children
            .iter()
            .map(|c| c.pack_interior(&layout, 0..1).iter().sum::<f64>())
            .sum();
        let cmean = csum / (8.0 * layout.cells() as f64);
        assert!((pmean - cmean).abs() < 1e-12);
    }

    #[test]
    fn split_then_merge_is_identity() {
        let p = params();
        let layout = BlockLayout::of(&p);
        let parent = BlockData::initialized(BlockId::new(0, 1, 1, 0), &p);
        let children = split_block(&parent, &p);
        let merged = merge_children(&children, &p);
        let orig = parent.pack_interior(&layout, 0..p.num_vars);
        let back = merged.pack_interior(&layout, 0..p.num_vars);
        for (a, b) in orig.iter().zip(back.iter()) {
            assert!(
                (a - b).abs() < 1e-12,
                "split→merge changed a cell: {a} vs {b}"
            );
        }
    }

    #[test]
    fn boundary_ghosts_are_zero_gradient() {
        let p = params();
        let layout = BlockLayout::of(&p);
        let b = BlockData::initialized(BlockId::new(0, 0, 0, 0), &p);
        b.fill_boundary_ghosts(&layout, Dir::X, Side::Lo, 0..p.num_vars);
        b.buf.full().with_read(|d| {
            for v in 0..p.num_vars {
                for z in 1..=layout.nz {
                    for y in 1..=layout.ny {
                        assert_eq!(d[layout.idx(v, z, y, 0)], d[layout.idx(v, z, y, 1)]);
                    }
                }
            }
        });
    }

    #[test]
    #[should_panic(expected = "octant order")]
    fn merge_rejects_misordered_children() {
        let p = params();
        let parent = BlockData::initialized(BlockId::new(0, 0, 0, 0), &p);
        let mut children = split_block(&parent, &p);
        children.swap(0, 1);
        let _ = merge_children(&children, &p);
    }

    #[test]
    fn uids_are_unique_per_allocation() {
        let p = params();
        let a = BlockData::empty(BlockId::new(0, 0, 0, 0), &p);
        let b = BlockData::empty(BlockId::new(0, 0, 0, 0), &p);
        assert_ne!(a.uid, b.uid);
    }
}
