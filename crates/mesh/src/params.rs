//! Mesh configuration parameters (the miniAMR command-line surface).

/// Static parameters of a miniAMR-style mesh.
///
/// The physical domain is the unit cube. The coarsest level divides it
/// into `npx*init_x × npy*init_y × npz*init_z` blocks of
/// `nx × ny × nz` cells, each cell holding `num_vars` variables. Blocks
/// refine at most `num_refine` times; every refinement halves the block's
/// spatial extent in each dimension while keeping the cell count, so the
/// finest blocks resolve `2^num_refine` times finer detail.
#[derive(Debug, Clone, PartialEq)]
pub struct MeshParams {
    /// Ranks in X (`--npx`).
    pub npx: usize,
    /// Ranks in Y (`--npy`).
    pub npy: usize,
    /// Ranks in Z (`--npz`).
    pub npz: usize,
    /// Initial blocks per rank in X (`--init_x`).
    pub init_x: usize,
    /// Initial blocks per rank in Y (`--init_y`).
    pub init_y: usize,
    /// Initial blocks per rank in Z (`--init_z`).
    pub init_z: usize,
    /// Cells per block in X (`--nx`); must be even for restriction.
    pub nx: usize,
    /// Cells per block in Y (`--ny`); must be even.
    pub ny: usize,
    /// Cells per block in Z (`--nz`); must be even.
    pub nz: usize,
    /// Variables per cell (`--num_vars`).
    pub num_vars: usize,
    /// Maximum refinement level (`--num_refine`).
    pub num_refine: u8,
    /// Maximum levels a block may change per refinement stage
    /// (`--block_change`; the paper's weak-scaling runs use 1).
    pub block_change: u8,
}

impl MeshParams {
    /// A small configuration for tests: one rank, 2×2×2 blocks of 4³
    /// cells, 2 variables, up to 2 refinement levels.
    pub fn test_small() -> MeshParams {
        MeshParams {
            npx: 1,
            npy: 1,
            npz: 1,
            init_x: 2,
            init_y: 2,
            init_z: 2,
            nx: 4,
            ny: 4,
            nz: 4,
            num_vars: 2,
            num_refine: 2,
            block_change: 1,
        }
    }

    /// Validates invariants (even cell counts, non-zero sizes, level
    /// bounds) and returns a descriptive error otherwise.
    pub fn validate(&self) -> Result<(), String> {
        let dims = [self.nx, self.ny, self.nz];
        if dims.iter().any(|&d| d == 0 || d % 2 != 0) {
            return Err(format!(
                "block cell counts must be even and non-zero, got {dims:?}"
            ));
        }
        if self.num_vars == 0 {
            return Err("num_vars must be at least 1".into());
        }
        let roots = [
            self.npx * self.init_x,
            self.npy * self.init_y,
            self.npz * self.init_z,
        ];
        if roots.contains(&0) {
            return Err("initial block grid must be non-empty in every dimension".into());
        }
        // BlockId packs per-dimension coordinates in 20 bits.
        for (i, &r) in roots.iter().enumerate() {
            let finest = r << self.num_refine;
            if finest > (1 << 20) {
                return Err(format!(
                    "dimension {i}: {r} root blocks at {} refinement levels exceeds the 2^20 coordinate space",
                    self.num_refine
                ));
            }
        }
        Ok(())
    }

    /// Number of ranks the mesh is laid out for.
    pub fn num_ranks(&self) -> usize {
        self.npx * self.npy * self.npz
    }

    /// Root-level block grid dimensions `(X, Y, Z)`.
    pub fn root_blocks(&self) -> (usize, usize, usize) {
        (
            self.npx * self.init_x,
            self.npy * self.init_y,
            self.npz * self.init_z,
        )
    }

    /// Block grid dimensions at refinement `level`.
    pub fn blocks_at_level(&self, level: u8) -> (usize, usize, usize) {
        let (x, y, z) = self.root_blocks();
        (x << level, y << level, z << level)
    }

    /// Cells in one block (without ghosts).
    pub fn cells_per_block(&self) -> usize {
        self.nx * self.ny * self.nz
    }

    /// Elements (cells × variables, with a 1-cell ghost halo) stored per
    /// block.
    pub fn elems_per_block(&self) -> usize {
        (self.nx + 2) * (self.ny + 2) * (self.nz + 2) * self.num_vars
    }

    /// Spatial edge lengths of a block at `level`.
    pub fn block_extent(&self, level: u8) -> (f64, f64, f64) {
        let (bx, by, bz) = self.blocks_at_level(level);
        (1.0 / bx as f64, 1.0 / by as f64, 1.0 / bz as f64)
    }

    /// Initial owner of root block `(x, y, z)`: miniAMR assigns each rank
    /// the `init_x × init_y × init_z` brick of root blocks matching its
    /// position in the `npx × npy × npz` rank grid.
    pub fn initial_owner(&self, x: usize, y: usize, z: usize) -> usize {
        let rx = x / self.init_x;
        let ry = y / self.init_y;
        let rz = z / self.init_z;
        (rz * self.npy + ry) * self.npx + rx
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation_catches_odd_cells() {
        let mut p = MeshParams::test_small();
        assert!(p.validate().is_ok());
        p.nx = 5;
        assert!(p.validate().is_err());
    }

    #[test]
    fn validation_catches_coordinate_overflow() {
        let mut p = MeshParams::test_small();
        p.num_refine = 30;
        assert!(p.validate().is_err());
    }

    #[test]
    fn level_scaling() {
        let p = MeshParams::test_small();
        assert_eq!(p.root_blocks(), (2, 2, 2));
        assert_eq!(p.blocks_at_level(2), (8, 8, 8));
        let (ex, ey, ez) = p.block_extent(1);
        assert_eq!((ex, ey, ez), (0.25, 0.25, 0.25));
    }

    #[test]
    fn initial_owner_matches_rank_grid() {
        let p = MeshParams {
            npx: 2,
            npy: 2,
            npz: 1,
            init_x: 3,
            init_y: 3,
            init_z: 3,
            ..MeshParams::test_small()
        };
        assert_eq!(p.initial_owner(0, 0, 0), 0);
        assert_eq!(p.initial_owner(3, 0, 0), 1);
        assert_eq!(p.initial_owner(0, 3, 0), 2);
        assert_eq!(p.initial_owner(5, 5, 2), 3);
    }

    #[test]
    fn elems_include_ghosts_and_vars() {
        let p = MeshParams::test_small();
        assert_eq!(p.elems_per_block(), 6 * 6 * 6 * 2);
    }
}
