//! # amr-mesh — a block-structured adaptive mesh refinement engine
//!
//! This crate reimplements the mesh machinery of the **miniAMR** proxy
//! application (Mantevo suite) that the CLUSTER 2020 paper *"Towards
//! Data-Flow Parallelization for Adaptive Mesh Refinement Applications"*
//! taskifies:
//!
//! * a rectangular mesh over the unit 3D cube, divided into equally-sized
//!   **blocks** ([`BlockId`], [`BlockData`]) that refine by splitting into
//!   eight children and coarsen by consolidating eight siblings
//!   ([`data::split_block`], [`data::merge_children`]);
//! * **moving objects** ([`Object`]) — rectangles, spheroids, cylinders,
//!   hemispheres, solid or surface-only — whose boundaries drive which
//!   blocks refine (§II-A);
//! * the global **mesh directory** ([`MeshDirectory`]) tracking active
//!   blocks, their owners and the refinement decision algorithm with the
//!   2:1 face-neighbor balance constraint;
//! * **stencils** (7-point and 27-point averages) and **face transfer
//!   operators** (same-level copy, fine→coarse restriction, coarse→fine
//!   prolongation) used by the communication phase;
//! * deterministic **checksums** and **partitioners** (Morton
//!   space-filling curve and recursive coordinate bisection) for the load
//!   balancing phase.
//!
//! ## Replicated directory substitution
//!
//! The reference miniAMR maintains *distributed* per-rank neighbor lists,
//! synchronized through messages during refinement. This implementation
//! replicates the (small — one entry per block) directory of active
//! blocks on every rank and keeps it consistent by running the identical
//! deterministic refinement decision everywhere. The resulting mesh
//! evolution, communication pattern (which faces cross which rank
//! boundary) and data movement (block exchange at load balancing) are the
//! same; only the metadata bookkeeping differs. See DESIGN.md §2.

#![warn(missing_docs)]

pub mod block_id;
pub mod checksum;
pub mod data;
pub mod directory;
pub mod face;
pub mod object;
pub mod params;
pub mod partition;
pub mod stencil;

pub use block_id::{BlockId, Dir, Side};
pub use data::BlockData;
pub use directory::{MeshDirectory, NeighborInfo, RefinePlan};
pub use object::{Object, Shape};
pub use params::MeshParams;
