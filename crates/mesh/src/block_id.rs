//! Block identity and octree geometry.
//!
//! A block is identified by its refinement level and integer coordinates
//! within the block grid of that level. All structural queries — parent,
//! children, face neighbors at equal or adjacent levels, Morton keys for
//! the space-filling-curve partitioner — are pure functions of the id.

use crate::params::MeshParams;

/// One of the three axes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Dir {
    /// X axis.
    X = 0,
    /// Y axis.
    Y = 1,
    /// Z axis.
    Z = 2,
}

impl Dir {
    /// All three directions in X, Y, Z order (the order miniAMR processes
    /// them in `communicate`).
    pub const ALL: [Dir; 3] = [Dir::X, Dir::Y, Dir::Z];

    /// Index 0..3.
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }
}

/// Low or high side of an axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Side {
    /// The −axis face.
    Lo,
    /// The +axis face.
    Hi,
}

impl Side {
    /// Both sides.
    pub const BOTH: [Side; 2] = [Side::Lo, Side::Hi];

    /// The opposite side.
    #[inline]
    pub fn opposite(self) -> Side {
        match self {
            Side::Lo => Side::Hi,
            Side::Hi => Side::Lo,
        }
    }

    /// 0 for `Lo`, 1 for `Hi`.
    #[inline]
    pub fn index(self) -> usize {
        match self {
            Side::Lo => 0,
            Side::Hi => 1,
        }
    }
}

/// Identity of a mesh block: refinement level plus integer coordinates in
/// that level's block grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlockId {
    /// Refinement level (0 = coarsest).
    pub level: u8,
    /// X coordinate in the level's block grid.
    pub x: u32,
    /// Y coordinate.
    pub y: u32,
    /// Z coordinate.
    pub z: u32,
}

impl BlockId {
    /// Builds an id.
    pub fn new(level: u8, x: u32, y: u32, z: u32) -> BlockId {
        BlockId { level, x, y, z }
    }

    /// The parent block one level coarser; `None` at level 0.
    pub fn parent(&self) -> Option<BlockId> {
        if self.level == 0 {
            None
        } else {
            Some(BlockId {
                level: self.level - 1,
                x: self.x / 2,
                y: self.y / 2,
                z: self.z / 2,
            })
        }
    }

    /// The eight children one level finer, in Z-major octant order
    /// (dz, dy, dx nested loops — the order split/merge data operators
    /// use).
    pub fn children(&self) -> [BlockId; 8] {
        let mut out = [*self; 8];
        let mut i = 0;
        for dz in 0..2u32 {
            for dy in 0..2u32 {
                for dx in 0..2u32 {
                    out[i] = BlockId {
                        level: self.level + 1,
                        x: self.x * 2 + dx,
                        y: self.y * 2 + dy,
                        z: self.z * 2 + dz,
                    };
                    i += 1;
                }
            }
        }
        out
    }

    /// This block's octant index (0..8) within its parent.
    pub fn octant(&self) -> usize {
        ((self.z % 2) * 4 + (self.y % 2) * 2 + (self.x % 2)) as usize
    }

    /// The same-level neighbor across `(dir, side)`, or `None` at the
    /// domain boundary.
    pub fn neighbor(&self, dir: Dir, side: Side, params: &MeshParams) -> Option<BlockId> {
        let (bx, by, bz) = params.blocks_at_level(self.level);
        let limit = [bx as u32, by as u32, bz as u32][dir.index()];
        let coord = [self.x, self.y, self.z][dir.index()];
        let new = match side {
            Side::Lo => coord.checked_sub(1)?,
            Side::Hi => {
                let n = coord + 1;
                if n >= limit {
                    return None;
                }
                n
            }
        };
        let mut id = *self;
        match dir {
            Dir::X => id.x = new,
            Dir::Y => id.y = new,
            Dir::Z => id.z = new,
        }
        Some(id)
    }

    /// The four same-level blocks forming the `(dir, side)` face of the
    /// neighbor region one level finer — i.e. the potential finer
    /// neighbors across that face. Returns `None` at the domain boundary.
    ///
    /// The four are ordered by the two transverse coordinates (minor axis
    /// first), matching the quarter-face packing order of the transfer
    /// operators.
    pub fn finer_neighbors(
        &self,
        dir: Dir,
        side: Side,
        params: &MeshParams,
    ) -> Option<[BlockId; 4]> {
        let same = self.neighbor(dir, side, params)?;
        // Children of `same` touching the face that looks back at us.
        let child_base = BlockId {
            level: same.level + 1,
            x: same.x * 2,
            y: same.y * 2,
            z: same.z * 2,
        };
        // Fixed coordinate along `dir`: the child layer adjacent to us.
        let fixed = match side {
            // Our Hi side ⇒ neighbor's Lo layer.
            Side::Hi => 0,
            Side::Lo => 1,
        };
        let (t1, t2) = transverse(dir);
        let mut out = [child_base; 4];
        let mut i = 0;
        for c2 in 0..2u32 {
            for c1 in 0..2u32 {
                let mut id = child_base;
                set_coord(&mut id, dir, coord(&child_base, dir) + fixed);
                set_coord(&mut id, t1, coord(&child_base, t1) + c1);
                set_coord(&mut id, t2, coord(&child_base, t2) + c2);
                out[i] = id;
                i += 1;
            }
        }
        Some(out)
    }

    /// Which quarter (0..4) of the coarser neighbor's face this block
    /// covers, ordered consistently with [`BlockId::finer_neighbors`].
    pub fn quarter_of_coarse_face(&self, dir: Dir) -> usize {
        let (t1, t2) = transverse(dir);
        let c1 = coord(self, t1) % 2;
        let c2 = coord(self, t2) % 2;
        (c2 * 2 + c1) as usize
    }

    /// Spatial bounds `[lo, hi)` of the block in the unit cube.
    pub fn bounds(&self, params: &MeshParams) -> ([f64; 3], [f64; 3]) {
        let (ex, ey, ez) = params.block_extent(self.level);
        let lo = [self.x as f64 * ex, self.y as f64 * ey, self.z as f64 * ez];
        let hi = [lo[0] + ex, lo[1] + ey, lo[2] + ez];
        (lo, hi)
    }

    /// Spatial center of the block.
    pub fn center(&self, params: &MeshParams) -> [f64; 3] {
        let (lo, hi) = self.bounds(params);
        [
            (lo[0] + hi[0]) * 0.5,
            (lo[1] + hi[1]) * 0.5,
            (lo[2] + hi[2]) * 0.5,
        ]
    }

    /// Morton (Z-order) key at the finest coordinate resolution, with the
    /// level appended as a tiebreak. Sorting active blocks by this key
    /// yields the space-filling-curve order used by the load balancer.
    pub fn morton_key(&self, params: &MeshParams) -> u128 {
        let shift = params.num_refine - self.level;
        let fx = (self.x as u64) << shift;
        let fy = (self.y as u64) << shift;
        let fz = (self.z as u64) << shift;
        let interleaved = interleave3(fx) | (interleave3(fy) << 1) | (interleave3(fz) << 2);
        (interleaved << 8) | self.level as u128
    }
}

#[inline]
fn coord(id: &BlockId, dir: Dir) -> u32 {
    match dir {
        Dir::X => id.x,
        Dir::Y => id.y,
        Dir::Z => id.z,
    }
}

#[inline]
fn set_coord(id: &mut BlockId, dir: Dir, v: u32) {
    match dir {
        Dir::X => id.x = v,
        Dir::Y => id.y = v,
        Dir::Z => id.z = v,
    }
}

/// The two axes transverse to `dir`, in a fixed (minor, major) order.
#[inline]
pub(crate) fn transverse(dir: Dir) -> (Dir, Dir) {
    match dir {
        Dir::X => (Dir::Y, Dir::Z),
        Dir::Y => (Dir::X, Dir::Z),
        Dir::Z => (Dir::X, Dir::Y),
    }
}

/// Spreads the low 21 bits of `v` so consecutive bits land 3 apart.
fn interleave3(v: u64) -> u128 {
    let mut out = 0u128;
    for bit in 0..21 {
        if v & (1 << bit) != 0 {
            out |= 1u128 << (3 * bit);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> MeshParams {
        MeshParams::test_small()
    }

    #[test]
    fn parent_child_roundtrip() {
        let b = BlockId::new(1, 3, 2, 1);
        for c in b.children() {
            assert_eq!(c.parent().unwrap(), b);
            assert_eq!(c.level, 2);
        }
        assert!(BlockId::new(0, 0, 0, 0).parent().is_none());
    }

    #[test]
    fn octant_indices_are_distinct() {
        let b = BlockId::new(0, 0, 0, 0);
        let octants: Vec<usize> = b.children().iter().map(|c| c.octant()).collect();
        assert_eq!(octants, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn neighbors_respect_domain_boundary() {
        let p = params();
        let b = BlockId::new(0, 0, 0, 0);
        assert!(b.neighbor(Dir::X, Side::Lo, &p).is_none());
        assert_eq!(
            b.neighbor(Dir::X, Side::Hi, &p),
            Some(BlockId::new(0, 1, 0, 0))
        );
        let edge = BlockId::new(0, 1, 1, 1);
        assert!(edge.neighbor(Dir::X, Side::Hi, &p).is_none());
        assert!(edge.neighbor(Dir::Z, Side::Lo, &p).is_some());
    }

    #[test]
    fn finer_neighbors_touch_the_shared_face() {
        let p = params();
        let b = BlockId::new(0, 0, 0, 0);
        let finer = b.finer_neighbors(Dir::X, Side::Hi, &p).unwrap();
        for f in finer {
            assert_eq!(f.level, 1);
            // All four sit in the x=2 fine layer (the Lo face of block (0,1,0,0)).
            assert_eq!(f.x, 2);
            assert_eq!(f.parent().unwrap(), BlockId::new(0, 1, 0, 0));
        }
        // The four cover the 2×2 transverse combinations.
        let mut yz: Vec<(u32, u32)> = finer.iter().map(|f| (f.y, f.z)).collect();
        yz.sort_unstable();
        assert_eq!(yz, vec![(0, 0), (0, 1), (1, 0), (1, 1)]);
    }

    #[test]
    fn quarter_index_matches_finer_neighbor_order() {
        let p = params();
        let b = BlockId::new(0, 0, 0, 0);
        let finer = b.finer_neighbors(Dir::X, Side::Hi, &p).unwrap();
        for (i, f) in finer.iter().enumerate() {
            assert_eq!(f.quarter_of_coarse_face(Dir::X), i);
        }
    }

    #[test]
    fn bounds_partition_the_cube() {
        let p = params();
        let (lo, hi) = BlockId::new(0, 1, 1, 1).bounds(&p);
        assert_eq!(lo, [0.5, 0.5, 0.5]);
        assert_eq!(hi, [1.0, 1.0, 1.0]);
        let (lo, hi) = BlockId::new(2, 7, 0, 0).bounds(&p);
        assert!((lo[0] - 0.875).abs() < 1e-12);
        assert!((hi[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn morton_orders_children_contiguously() {
        let p = params();
        let parent = BlockId::new(0, 1, 0, 0);
        let sibling = BlockId::new(0, 0, 1, 0);
        let pk = parent.morton_key(&p);
        let sk = sibling.morton_key(&p);
        // All children of `parent` sort between parent and any block whose
        // key exceeds the parent's subtree range.
        for c in parent.children() {
            let ck = c.morton_key(&p);
            if pk < sk {
                assert!(ck < sk, "child escaped its parent's Morton range");
            } else {
                assert!(ck > sk);
            }
        }
    }

    #[test]
    fn morton_keys_unique_across_levels() {
        let p = params();
        let a = BlockId::new(0, 0, 0, 0);
        let child = BlockId::new(1, 0, 0, 0);
        assert_ne!(a.morton_key(&p), child.morton_key(&p));
    }
}
