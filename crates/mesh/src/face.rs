//! Face transfer operators: the data plumbing of the `communicate` phase.
//!
//! Ghost exchange between neighboring blocks comes in three flavors,
//! matching miniAMR:
//!
//! * **same level** — copy the neighbor's boundary face plane into the
//!   ghost plane;
//! * **fine → coarse** — the fine block's full face is *restricted*
//!   (2×2 average) on the sender side and lands in one quarter of the
//!   coarse block's ghost plane;
//! * **coarse → fine** — the coarse block extracts the face *quarter*
//!   facing the fine neighbor; the receiver *prolongates* it (2×
//!   duplication) over its full ghost plane.
//!
//! All faces are packed variable-major, then by the major transverse
//! axis, then the minor one — the same canonical order everywhere, so a
//! packed face is exactly what `inject` expects.

use crate::block_id::{transverse, Dir, Side};
use crate::data::{BlockData, BlockLayout};
use std::ops::Range;

/// Transverse face dimensions `(n1, n2)` for a direction (minor, major).
pub fn face_dims(layout: &BlockLayout, dir: Dir) -> (usize, usize) {
    let n = [layout.nx, layout.ny, layout.nz];
    let (t1, t2) = transverse(dir);
    (n[t1.index()], n[t2.index()])
}

// For Dir::Z the plane coordinates are (x, y): c1 = x, c2 = y, fixed = z.
// The match above folds X and Z because idx argument order differs; keep a
// dedicated helper to stay explicit:
#[inline]
fn cell_index(
    layout: &BlockLayout,
    dir: Dir,
    v: usize,
    fixed: usize,
    c1: usize,
    c2: usize,
) -> usize {
    match dir {
        // (c1, c2) = (y, z)
        Dir::X => layout.idx(v, c2, c1, fixed),
        // (c1, c2) = (x, z)
        Dir::Y => layout.idx(v, c2, fixed, c1),
        // (c1, c2) = (x, y)
        Dir::Z => layout.idx(v, fixed, c2, c1),
    }
}

/// Extracts the interior boundary plane on `side` into a packed face.
pub fn extract_face(
    block: &BlockData,
    layout: &BlockLayout,
    dir: Dir,
    side: Side,
    vars: Range<usize>,
) -> Vec<f64> {
    let (n1, n2) = face_dims(layout, dir);
    let mut out = vec![0.0; vars.len() * n1 * n2];
    extract_face_into(block, layout, dir, side, vars, &mut out);
    out
}

/// [`extract_face`] writing into a caller-supplied buffer (e.g. a message
/// buffer section), avoiding the intermediate `Vec` + copy.
///
/// `out` must hold exactly `vars.len() · n1 · n2` elements.
pub fn extract_face_into(
    block: &BlockData,
    layout: &BlockLayout,
    dir: Dir,
    side: Side,
    vars: Range<usize>,
    out: &mut [f64],
) {
    let (n1, n2) = face_dims(layout, dir);
    assert_eq!(out.len(), vars.len() * n1 * n2, "face buffer size mismatch");
    let n = [layout.nx, layout.ny, layout.nz][dir.index()];
    let fixed = match side {
        Side::Lo => 1,
        Side::Hi => n,
    };
    let mut i = 0;
    let vstart = vars.start;
    let slab = block.buf.slice(layout.var_elem_range(vars.clone()));
    slab.with_read(|data| {
        for v in vars {
            for c2 in 1..=n2 {
                // For Y and Z faces c1 runs along x, the contiguous axis,
                // so the whole row is one memcpy.
                if dir != Dir::X {
                    let base = cell_index(layout, dir, v - vstart, fixed, 1, c2);
                    out[i..i + n1].copy_from_slice(&data[base..base + n1]);
                    i += n1;
                } else {
                    for c1 in 1..=n1 {
                        out[i] = data[cell_index(layout, dir, v - vstart, fixed, c1, c2)];
                        i += 1;
                    }
                }
            }
        }
    });
}

/// Writes a packed face into the ghost plane on `side`.
pub fn inject_ghost_face(
    block: &BlockData,
    layout: &BlockLayout,
    dir: Dir,
    side: Side,
    vars: Range<usize>,
    face: &[f64],
) {
    let (n1, n2) = face_dims(layout, dir);
    assert_eq!(face.len(), vars.len() * n1 * n2, "face size mismatch");
    let n = [layout.nx, layout.ny, layout.nz][dir.index()];
    let fixed = match side {
        Side::Lo => 0,
        Side::Hi => n + 1,
    };
    let mut i = 0;
    let vstart = vars.start;
    let slab = block.buf.slice(layout.var_elem_range(vars.clone()));
    slab.with_write(|data| {
        for v in vars {
            for c2 in 1..=n2 {
                // Row memcpy on the contiguous axis (see extract_face_into).
                if dir != Dir::X {
                    let base = cell_index(layout, dir, v - vstart, fixed, 1, c2);
                    data[base..base + n1].copy_from_slice(&face[i..i + n1]);
                    i += n1;
                } else {
                    for c1 in 1..=n1 {
                        data[cell_index(layout, dir, v - vstart, fixed, c1, c2)] = face[i];
                        i += 1;
                    }
                }
            }
        }
    });
}

/// Restricts a packed fine face (`n1 × n2` per variable) to coarse
/// resolution (`n1/2 × n2/2`) by averaging 2×2 cell groups — the
/// sender-side operator of a fine→coarse exchange.
pub fn restrict_face(face: &[f64], n1: usize, n2: usize, nvars: usize) -> Vec<f64> {
    let mut out = vec![0.0; nvars * (n1 / 2) * (n2 / 2)];
    restrict_face_into(face, n1, n2, nvars, &mut out);
    out
}

/// [`restrict_face`] writing into a caller-supplied buffer.
///
/// `out` must hold exactly `nvars · (n1/2) · (n2/2)` elements. The 2×2
/// groups are summed in the fixed order `i00 + i01 + i10 + i11`, which
/// [`restrict_from_block_into`] reproduces cell-for-cell.
pub fn restrict_face_into(face: &[f64], n1: usize, n2: usize, nvars: usize, out: &mut [f64]) {
    assert_eq!(face.len(), nvars * n1 * n2);
    let h1 = n1 / 2;
    let h2 = n2 / 2;
    assert_eq!(
        out.len(),
        nvars * h1 * h2,
        "restricted face buffer size mismatch"
    );
    let mut o = 0;
    for v in 0..nvars {
        let base = v * n1 * n2;
        for c2 in 0..h2 {
            for c1 in 0..h1 {
                let i00 = base + (2 * c2) * n1 + 2 * c1;
                let i01 = i00 + 1;
                let i10 = base + (2 * c2 + 1) * n1 + 2 * c1;
                let i11 = i10 + 1;
                out[o] = (face[i00] + face[i01] + face[i10] + face[i11]) * 0.25;
                o += 1;
            }
        }
    }
}

/// Fused extract + restrict: reads the fine block's boundary plane and
/// writes the coarse-resolution face straight into `out`, skipping the
/// intermediate full-resolution face entirely.
///
/// Bitwise-identical to `extract_face` → `restrict_face`: each 2×2 group
/// is read in the same `i00, i01, i10, i11` order and summed identically.
pub fn restrict_from_block_into(
    block: &BlockData,
    layout: &BlockLayout,
    dir: Dir,
    side: Side,
    vars: Range<usize>,
    out: &mut [f64],
) {
    let (n1, n2) = face_dims(layout, dir);
    let h1 = n1 / 2;
    let h2 = n2 / 2;
    assert_eq!(
        out.len(),
        vars.len() * h1 * h2,
        "restricted face buffer size mismatch"
    );
    let n = [layout.nx, layout.ny, layout.nz][dir.index()];
    let fixed = match side {
        Side::Lo => 1,
        Side::Hi => n,
    };
    let mut o = 0;
    let vstart = vars.start;
    let slab = block.buf.slice(layout.var_elem_range(vars.clone()));
    slab.with_read(|data| {
        for v in vars {
            let v = v - vstart;
            for c2 in 0..h2 {
                for c1 in 0..h1 {
                    // Cells (2c1+1, 2c2+1) … (2c1+2, 2c2+2), 1-based.
                    let i00 = data[cell_index(layout, dir, v, fixed, 2 * c1 + 1, 2 * c2 + 1)];
                    let i01 = data[cell_index(layout, dir, v, fixed, 2 * c1 + 2, 2 * c2 + 1)];
                    let i10 = data[cell_index(layout, dir, v, fixed, 2 * c1 + 1, 2 * c2 + 2)];
                    let i11 = data[cell_index(layout, dir, v, fixed, 2 * c1 + 2, 2 * c2 + 2)];
                    out[o] = (i00 + i01 + i10 + i11) * 0.25;
                    o += 1;
                }
            }
        }
    });
}

/// Prolongates a packed quarter face (`n1/2 × n2/2` per variable) to fine
/// resolution (`n1 × n2`) by 2× duplication — the receiver-side operator
/// of a coarse→fine exchange.
pub fn prolong_face(quarter: &[f64], n1: usize, n2: usize, nvars: usize) -> Vec<f64> {
    let mut out = vec![0.0; nvars * n1 * n2];
    prolong_face_into(quarter, n1, n2, nvars, &mut out);
    out
}

/// [`prolong_face`] writing into a caller-supplied buffer of
/// `nvars · n1 · n2` elements.
pub fn prolong_face_into(quarter: &[f64], n1: usize, n2: usize, nvars: usize, out: &mut [f64]) {
    let h1 = n1 / 2;
    let h2 = n2 / 2;
    assert_eq!(quarter.len(), nvars * h1 * h2);
    assert_eq!(
        out.len(),
        nvars * n1 * n2,
        "prolonged face buffer size mismatch"
    );
    for v in 0..nvars {
        let qbase = v * h1 * h2;
        let obase = v * n1 * n2;
        for c2 in 0..n2 {
            for c1 in 0..n1 {
                out[obase + c2 * n1 + c1] = quarter[qbase + (c2 / 2) * h1 + c1 / 2];
            }
        }
    }
}

/// Fused prolong + inject: duplicates a packed quarter face (`n1/2 × n2/2`
/// per variable) 2× in both transverse axes directly into the ghost plane
/// on `side`, skipping the intermediate full-resolution face.
///
/// Bitwise-identical to `prolong_face` → `inject_ghost_face`: prolongation
/// is pure duplication, so only the write path changes.
pub fn inject_prolonged_face(
    block: &BlockData,
    layout: &BlockLayout,
    dir: Dir,
    side: Side,
    vars: Range<usize>,
    quarter: &[f64],
) {
    let (n1, n2) = face_dims(layout, dir);
    let h1 = n1 / 2;
    let h2 = n2 / 2;
    assert_eq!(
        quarter.len(),
        vars.len() * h1 * h2,
        "quarter face size mismatch"
    );
    let n = [layout.nx, layout.ny, layout.nz][dir.index()];
    let fixed = match side {
        Side::Lo => 0,
        Side::Hi => n + 1,
    };
    let vstart = vars.start;
    let slab = block.buf.slice(layout.var_elem_range(vars.clone()));
    slab.with_write(|data| {
        for v in vars {
            let qbase = (v - vstart) * h1 * h2;
            for c2 in 1..=n2 {
                let qrow = qbase + ((c2 - 1) / 2) * h1;
                for c1 in 1..=n1 {
                    data[cell_index(layout, dir, v - vstart, fixed, c1, c2)] =
                        quarter[qrow + (c1 - 1) / 2];
                }
            }
        }
    });
}

/// Extracts one quarter (`0..4`, minor-axis-first order matching
/// [`crate::block_id::BlockId::quarter_of_coarse_face`]) of the interior
/// boundary plane — what a coarse block sends to one fine neighbor.
pub fn extract_face_quarter(
    block: &BlockData,
    layout: &BlockLayout,
    dir: Dir,
    side: Side,
    quarter: usize,
    vars: Range<usize>,
) -> Vec<f64> {
    let (n1, n2) = face_dims(layout, dir);
    let mut out = vec![0.0; vars.len() * (n1 / 2) * (n2 / 2)];
    extract_face_quarter_into(block, layout, dir, side, quarter, vars, &mut out);
    out
}

/// [`extract_face_quarter`] writing into a caller-supplied buffer of
/// `vars.len() · (n1/2) · (n2/2)` elements.
pub fn extract_face_quarter_into(
    block: &BlockData,
    layout: &BlockLayout,
    dir: Dir,
    side: Side,
    quarter: usize,
    vars: Range<usize>,
    out: &mut [f64],
) {
    let (n1, n2) = face_dims(layout, dir);
    let h1 = n1 / 2;
    let h2 = n2 / 2;
    assert_eq!(
        out.len(),
        vars.len() * h1 * h2,
        "quarter face buffer size mismatch"
    );
    let o1 = (quarter % 2) * h1;
    let o2 = (quarter / 2) * h2;
    let n = [layout.nx, layout.ny, layout.nz][dir.index()];
    let fixed = match side {
        Side::Lo => 1,
        Side::Hi => n,
    };
    let mut i = 0;
    let vstart = vars.start;
    let slab = block.buf.slice(layout.var_elem_range(vars.clone()));
    slab.with_read(|data| {
        for v in vars {
            for c2 in 1..=h2 {
                if dir != Dir::X {
                    let base = cell_index(layout, dir, v - vstart, fixed, o1 + 1, o2 + c2);
                    out[i..i + h1].copy_from_slice(&data[base..base + h1]);
                    i += h1;
                } else {
                    for c1 in 1..=h1 {
                        out[i] = data[cell_index(layout, dir, v - vstart, fixed, o1 + c1, o2 + c2)];
                        i += 1;
                    }
                }
            }
        }
    });
}

/// Writes a coarse-resolution face (`n1/2 × n2/2` per variable) into one
/// quarter of the ghost plane — what a coarse block does with a restricted
/// face received from a fine neighbor.
pub fn inject_ghost_quarter(
    block: &BlockData,
    layout: &BlockLayout,
    dir: Dir,
    side: Side,
    quarter: usize,
    vars: Range<usize>,
    face: &[f64],
) {
    let (n1, n2) = face_dims(layout, dir);
    let h1 = n1 / 2;
    let h2 = n2 / 2;
    assert_eq!(
        face.len(),
        vars.len() * h1 * h2,
        "quarter face size mismatch"
    );
    let o1 = (quarter % 2) * h1;
    let o2 = (quarter / 2) * h2;
    let n = [layout.nx, layout.ny, layout.nz][dir.index()];
    let fixed = match side {
        Side::Lo => 0,
        Side::Hi => n + 1,
    };
    let mut i = 0;
    let vstart = vars.start;
    let slab = block.buf.slice(layout.var_elem_range(vars.clone()));
    slab.with_write(|data| {
        for v in vars {
            for c2 in 1..=h2 {
                for c1 in 1..=h1 {
                    data[cell_index(layout, dir, v - vstart, fixed, o1 + c1, o2 + c2)] = face[i];
                    i += 1;
                }
            }
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block_id::BlockId;
    use crate::params::MeshParams;

    fn setup() -> (MeshParams, BlockLayout) {
        let p = MeshParams::test_small();
        let l = BlockLayout::of(&p);
        (p, l)
    }

    #[test]
    fn same_level_exchange_fills_ghosts() {
        let (p, l) = setup();
        let a = BlockData::initialized(BlockId::new(0, 0, 0, 0), &p);
        let b = BlockData::initialized(BlockId::new(0, 1, 0, 0), &p);
        // a's Hi-X face goes into b's Lo-X ghosts.
        let face = extract_face(&a, &l, Dir::X, Side::Hi, 0..p.num_vars);
        inject_ghost_face(&b, &l, Dir::X, Side::Lo, 0..p.num_vars, &face);
        b.buf.full().with_read(|data| {
            a.buf.full().with_read(|adata| {
                for v in 0..p.num_vars {
                    for z in 1..=l.nz {
                        for y in 1..=l.ny {
                            assert_eq!(
                                data[l.idx(v, z, y, 0)],
                                adata[l.idx(v, z, y, l.nx)],
                                "ghost does not match neighbor face"
                            );
                        }
                    }
                }
            });
        });
    }

    #[test]
    fn all_directions_roundtrip() {
        let (p, l) = setup();
        for dir in Dir::ALL {
            let a = BlockData::initialized(BlockId::new(0, 0, 0, 0), &p);
            let b = BlockData::empty(BlockId::new(0, 0, 0, 0), &p);
            let face = extract_face(&a, &l, dir, Side::Hi, 0..1);
            let (n1, n2) = face_dims(&l, dir);
            assert_eq!(face.len(), n1 * n2);
            inject_ghost_face(&b, &l, dir, Side::Lo, 0..1, &face);
            // The injected ghost plane must reproduce the packed face.
            let mut got = Vec::new();
            b.buf.full().with_read(|data| {
                for c2 in 1..=n2 {
                    for c1 in 1..=n1 {
                        got.push(data[cell_index(&l, dir, 0, 0, c1, c2)]);
                    }
                }
            });
            assert_eq!(got, face, "direction {dir:?} roundtrip failed");
        }
    }

    #[test]
    fn restriction_averages_quads() {
        let face = vec![
            1.0, 2.0, 3.0, 4.0, //
            5.0, 6.0, 7.0, 8.0, //
            1.0, 1.0, 2.0, 2.0, //
            1.0, 1.0, 2.0, 2.0,
        ];
        let r = restrict_face(&face, 4, 4, 1);
        assert_eq!(
            r,
            vec![
                (1.0 + 2.0 + 5.0 + 6.0) / 4.0,
                (3.0 + 4.0 + 7.0 + 8.0) / 4.0,
                1.0,
                2.0
            ]
        );
    }

    #[test]
    fn prolongation_duplicates() {
        let quarter = vec![1.0, 2.0, 3.0, 4.0]; // 2×2
        let p = prolong_face(&quarter, 4, 4, 1);
        assert_eq!(
            p,
            vec![
                1.0, 1.0, 2.0, 2.0, //
                1.0, 1.0, 2.0, 2.0, //
                3.0, 3.0, 4.0, 4.0, //
                3.0, 3.0, 4.0, 4.0,
            ]
        );
    }

    #[test]
    fn restrict_then_prolong_preserves_mean() {
        let (_, l) = setup();
        let (n1, n2) = face_dims(&l, Dir::Y);
        let face: Vec<f64> = (0..n1 * n2)
            .map(|i| (i as f64 * 0.37).sin() + 2.0)
            .collect();
        let r = restrict_face(&face, n1, n2, 1);
        let back = prolong_face(&r, n1, n2, 1);
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        assert!((mean(&face) - mean(&back)).abs() < 1e-12);
    }

    #[test]
    fn quarter_extract_covers_face_exactly() {
        let (p, l) = setup();
        let a = BlockData::initialized(BlockId::new(0, 0, 0, 0), &p);
        let full = extract_face(&a, &l, Dir::Z, Side::Hi, 0..1);
        let (n1, n2) = face_dims(&l, Dir::Z);
        let mut reassembled = vec![0.0; n1 * n2];
        for q in 0..4 {
            let quarter = extract_face_quarter(&a, &l, Dir::Z, Side::Hi, q, 0..1);
            let o1 = (q % 2) * n1 / 2;
            let o2 = (q / 2) * n2 / 2;
            for c2 in 0..n2 / 2 {
                for c1 in 0..n1 / 2 {
                    reassembled[(o2 + c2) * n1 + o1 + c1] = quarter[c2 * (n1 / 2) + c1];
                }
            }
        }
        assert_eq!(reassembled, full);
    }

    /// Deterministic irregular fill so bitwise comparisons are meaningful.
    fn scramble(b: &BlockData, seed: u64) {
        b.buf.full().with_write(|d| {
            let mut s = seed | 1;
            for v in d.iter_mut() {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                *v = ((s >> 11) as f64 / (1u64 << 53) as f64 - 0.5) * 64.0;
            }
        });
    }

    /// The fused sender-side restrict must match extract → restrict
    /// bitwise, and the `_into` extract must match the allocating one.
    #[test]
    fn fused_restrict_matches_two_step_bitwise() {
        let (p, l) = setup();
        let a = BlockData::initialized(BlockId::new(0, 0, 0, 0), &p);
        scramble(&a, 0x51CA);
        for dir in Dir::ALL {
            for side in [Side::Lo, Side::Hi] {
                let full = extract_face(&a, &l, dir, side, 0..p.num_vars);
                let (n1, n2) = face_dims(&l, dir);
                let two_step = restrict_face(&full, n1, n2, p.num_vars);

                let mut into = vec![0.0; full.len()];
                extract_face_into(&a, &l, dir, side, 0..p.num_vars, &mut into);
                assert_eq!(into, full, "extract_face_into diverged ({dir:?} {side:?})");

                let mut fused = vec![0.0; two_step.len()];
                restrict_from_block_into(&a, &l, dir, side, 0..p.num_vars, &mut fused);
                for (i, (f, t)) in fused.iter().zip(&two_step).enumerate() {
                    assert_eq!(
                        f.to_bits(),
                        t.to_bits(),
                        "fused restrict mismatch at {i} ({dir:?} {side:?})"
                    );
                }
            }
        }
    }

    /// The fused receiver-side prolong-inject must leave the ghost plane
    /// exactly as prolong_face → inject_ghost_face would.
    #[test]
    fn fused_prolong_inject_matches_two_step() {
        let (p, l) = setup();
        for dir in Dir::ALL {
            for side in [Side::Lo, Side::Hi] {
                let (n1, n2) = face_dims(&l, dir);
                let quarter: Vec<f64> = (0..p.num_vars * (n1 / 2) * (n2 / 2))
                    .map(|i| (i as f64 * 0.73).sin() * 9.0)
                    .collect();

                let two_step = BlockData::empty(BlockId::new(0, 0, 0, 0), &p);
                let full = prolong_face(&quarter, n1, n2, p.num_vars);
                inject_ghost_face(&two_step, &l, dir, side, 0..p.num_vars, &full);

                let fused = BlockData::empty(BlockId::new(0, 0, 0, 0), &p);
                inject_prolonged_face(&fused, &l, dir, side, 0..p.num_vars, &quarter);

                let want = two_step.buf.full().to_vec();
                let got = fused.buf.full().to_vec();
                assert_eq!(
                    got, want,
                    "fused prolong-inject diverged ({dir:?} {side:?})"
                );
            }
        }
    }

    #[test]
    fn quarter_extract_into_matches_allocating() {
        let (p, l) = setup();
        let a = BlockData::initialized(BlockId::new(0, 0, 0, 0), &p);
        scramble(&a, 0x9A9A);
        for dir in Dir::ALL {
            for q in 0..4 {
                let alloc = extract_face_quarter(&a, &l, dir, Side::Hi, q, 0..p.num_vars);
                let mut into = vec![0.0; alloc.len()];
                extract_face_quarter_into(&a, &l, dir, Side::Hi, q, 0..p.num_vars, &mut into);
                assert_eq!(into, alloc, "quarter {q} ({dir:?})");
            }
        }
    }

    #[test]
    fn fine_to_coarse_quarter_injection() {
        let (p, l) = setup();
        let coarse = BlockData::empty(BlockId::new(0, 0, 0, 0), &p);
        let (n1, n2) = face_dims(&l, Dir::X);
        // Fine neighbor's restricted face: all sevens.
        let restricted = vec![7.0; (n1 / 2) * (n2 / 2)];
        inject_ghost_quarter(&coarse, &l, Dir::X, Side::Hi, 3, 0..1, &restricted);
        // Quarter 3 occupies the high halves of both transverse axes.
        coarse.buf.full().with_read(|data| {
            let mut sevens = 0;
            for z in 1..=l.nz {
                for y in 1..=l.ny {
                    let v = data[l.idx(0, z, y, l.nx + 1)];
                    if v == 7.0 {
                        sevens += 1;
                        assert!(
                            y > l.ny / 2 && z > l.nz / 2,
                            "value landed in wrong quarter"
                        );
                    }
                }
            }
            assert_eq!(sevens, (n1 / 2) * (n2 / 2));
        });
    }
}
