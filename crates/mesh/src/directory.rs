//! The replicated mesh directory and the refinement decision algorithm.
//!
//! Every rank holds an identical copy of the directory (active blocks +
//! owners) and runs the identical, deterministic refinement decision, so
//! no metadata communication is needed to agree on the new mesh — only
//! block *data* moves (splits, merges, load balancing), exactly the
//! expensive parts the paper taskifies in §IV-B.

use crate::block_id::{BlockId, Dir, Side};
use crate::object::Object;
use crate::params::MeshParams;
use std::collections::{BTreeMap, BTreeSet};

/// What lies across a block face.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NeighborInfo {
    /// The domain boundary.
    Boundary,
    /// One neighbor at the same refinement level.
    Same(BlockId),
    /// One neighbor one level coarser.
    Coarser(BlockId),
    /// Four neighbors one level finer, in quarter order.
    Finer([BlockId; 4]),
}

/// The set of active blocks with their owning ranks.
#[derive(Debug, Clone, PartialEq)]
pub struct MeshDirectory {
    params: MeshParams,
    blocks: BTreeMap<BlockId, usize>,
}

/// One refinement step: which blocks split, which octets merge, and the
/// resulting directory.
#[derive(Debug, Clone, Default)]
pub struct RefinePlan {
    /// Blocks that split into their eight children (children keep the
    /// parent's owner).
    pub splits: Vec<BlockId>,
    /// Octets that merge into their parent. The parent is owned by the
    /// owner of the first child; data of the remaining children moves
    /// there.
    pub merges: Vec<BlockId>,
}

impl RefinePlan {
    /// True when the step changes nothing.
    pub fn is_empty(&self) -> bool {
        self.splits.is_empty() && self.merges.is_empty()
    }
}

impl MeshDirectory {
    /// The initial (coarsest) mesh with miniAMR's brick-per-rank owner
    /// layout.
    pub fn initial(params: MeshParams) -> MeshDirectory {
        params.validate().expect("invalid mesh parameters");
        let (bx, by, bz) = params.root_blocks();
        let mut blocks = BTreeMap::new();
        for z in 0..bz {
            for y in 0..by {
                for x in 0..bx {
                    blocks.insert(
                        BlockId::new(0, x as u32, y as u32, z as u32),
                        params.initial_owner(x, y, z),
                    );
                }
            }
        }
        MeshDirectory { params, blocks }
    }

    /// The mesh parameters.
    pub fn params(&self) -> &MeshParams {
        &self.params
    }

    /// Number of active blocks.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// True when the mesh has no blocks (never the case after
    /// construction).
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// Owner rank of a block, if active.
    pub fn owner(&self, id: &BlockId) -> Option<usize> {
        self.blocks.get(id).copied()
    }

    /// True when `id` is an active block.
    pub fn contains(&self, id: &BlockId) -> bool {
        self.blocks.contains_key(id)
    }

    /// Iterates `(block, owner)` in BlockId order (deterministic).
    pub fn iter(&self) -> impl Iterator<Item = (&BlockId, &usize)> {
        self.blocks.iter()
    }

    /// The blocks owned by `rank`, in BlockId order.
    pub fn blocks_of(&self, rank: usize) -> Vec<BlockId> {
        self.blocks
            .iter()
            .filter_map(|(id, &o)| (o == rank).then_some(*id))
            .collect()
    }

    /// Per-rank block counts (`ranks` entries).
    pub fn counts_per_rank(&self, ranks: usize) -> Vec<usize> {
        let mut counts = vec![0usize; ranks];
        for &o in self.blocks.values() {
            counts[o] += 1;
        }
        counts
    }

    /// Reassigns a block's owner (load balancing).
    pub fn set_owner(&mut self, id: BlockId, owner: usize) {
        let slot = self
            .blocks
            .get_mut(&id)
            .expect("set_owner on inactive block");
        *slot = owner;
    }

    /// Resolves what lies across a face, or `None` if the mesh structure
    /// is inconsistent there (a 2:1 invariant violation).
    pub fn try_neighbor_info(&self, id: &BlockId, dir: Dir, side: Side) -> Option<NeighborInfo> {
        let Some(same) = id.neighbor(dir, side, &self.params) else {
            return Some(NeighborInfo::Boundary);
        };
        if self.blocks.contains_key(&same) {
            return Some(NeighborInfo::Same(same));
        }
        if let Some(parent) = same.parent() {
            if self.blocks.contains_key(&parent) {
                return Some(NeighborInfo::Coarser(parent));
            }
        }
        if let Some(finer) = id.finer_neighbors(dir, side, &self.params) {
            if finer.iter().all(|f| self.blocks.contains_key(f)) {
                return Some(NeighborInfo::Finer(finer));
            }
        }
        None
    }

    /// Resolves what lies across a face.
    ///
    /// # Panics
    ///
    /// Panics on a mesh inconsistency (2:1 violation) — that indicates a
    /// bug in the refinement planner.
    pub fn neighbor_info(&self, id: &BlockId, dir: Dir, side: Side) -> NeighborInfo {
        self.try_neighbor_info(id, dir, side).unwrap_or_else(|| {
            panic!("mesh inconsistency: no neighbor across {dir:?}/{side:?} of {id:?}")
        })
    }

    /// Verifies the 2:1 face balance for the whole mesh. Returns the
    /// offending block on failure.
    pub fn check_balance(&self) -> Result<(), BlockId> {
        for id in self.blocks.keys() {
            for dir in Dir::ALL {
                for side in Side::BOTH {
                    if self.try_neighbor_info(id, dir, side).is_none() {
                        return Err(*id);
                    }
                }
            }
        }
        Ok(())
    }

    /// Computes one refinement step (±1 level per block) from the current
    /// object positions: object-intersecting blocks refine, object-free
    /// octets coarsen, and the 2:1 constraint is enforced by propagation.
    pub fn plan_refinement(&self, objects: &[Object]) -> RefinePlan {
        // Desired post-step level per block.
        let mut desired: BTreeMap<BlockId, u8> = BTreeMap::new();
        for id in self.blocks.keys() {
            let wants_refine = objects
                .iter()
                .any(|o| o.drives_refinement(id, &self.params));
            let level = if wants_refine {
                (id.level + 1).min(self.params.num_refine)
            } else if id.level > 0 {
                id.level - 1
            } else {
                0
            };
            desired.insert(*id, level);
        }

        // Fixpoint over two interacting rules, both of which only *raise*
        // desired levels (so the loop terminates):
        //
        // 1. **2:1 propagation** — a block's resulting level may exceed a
        //    face neighbor's by at most one.
        // 2. **merge coherence** — coarsening requires the whole octet: a
        //    block desiring `level-1` whose siblings are not all active
        //    and coarsen-willing reverts to its current level.
        //
        // Rule 2 must run *inside* the fixpoint: a canceled merge raises
        // the block back to its current level, which can invalidate 2:1
        // constraints that were satisfied against the merged level.
        loop {
            let mut changed = false;
            for id in self.blocks.keys() {
                let my_level = desired[id];
                if my_level <= 1 {
                    continue;
                }
                for dir in Dir::ALL {
                    for side in Side::BOTH {
                        let neighbors: Vec<BlockId> = match self.neighbor_info(id, dir, side) {
                            NeighborInfo::Boundary => continue,
                            NeighborInfo::Same(n) => vec![n],
                            NeighborInfo::Coarser(n) => vec![n],
                            NeighborInfo::Finer(ns) => ns.to_vec(),
                        };
                        for n in neighbors {
                            let nd = desired.get_mut(&n).expect("neighbor is active");
                            if my_level > *nd + 1 {
                                *nd = my_level - 1;
                                changed = true;
                            }
                        }
                    }
                }
            }
            // Merge coherence: cancel coarsening of incoherent octets.
            let mut cancels: Vec<BlockId> = Vec::new();
            for (id, &lvl) in desired.iter() {
                if lvl >= id.level {
                    continue;
                }
                let parent = id.parent().expect("level > 0 since it wants to coarsen");
                let ok = parent
                    .children()
                    .iter()
                    .all(|c| self.blocks.contains_key(c) && desired.get(c) == Some(&parent.level));
                if !ok {
                    cancels.push(*id);
                }
            }
            for id in cancels {
                desired.insert(id, id.level);
                changed = true;
            }
            if !changed {
                break;
            }
        }

        // Splits: desire one level above current.
        let mut splits = Vec::new();
        for (id, &lvl) in desired.iter() {
            debug_assert!(
                lvl <= id.level + 1 && lvl + 1 >= id.level,
                "desired level moved more than one step"
            );
            if lvl > id.level {
                splits.push(*id);
            }
        }

        // Merges: all eight children of a parent are active and desire the
        // parent's level.
        let mut merges = Vec::new();
        let mut seen_parents = BTreeSet::new();
        for (id, &lvl) in desired.iter() {
            if lvl >= id.level {
                continue;
            }
            let parent = id.parent().expect("level > 0 since it wants to coarsen");
            if !seen_parents.insert(parent) {
                continue;
            }
            let ok = parent
                .children()
                .iter()
                .all(|c| self.blocks.contains_key(c) && desired.get(c) == Some(&(parent.level)));
            if ok {
                merges.push(parent);
            }
        }

        RefinePlan { splits, merges }
    }

    /// Applies a refinement plan, producing the updated directory.
    pub fn apply_plan(&mut self, plan: &RefinePlan) {
        for parent in &plan.merges {
            let children = parent.children();
            let owner = self.blocks[&children[0]];
            for c in &children {
                self.blocks.remove(c).expect("merged child was active");
            }
            self.blocks.insert(*parent, owner);
        }
        for id in &plan.splits {
            let owner = self.blocks.remove(id).expect("split block was active");
            for c in id.children() {
                self.blocks.insert(c, owner);
            }
        }
        debug_assert!(
            self.check_balance().is_ok(),
            "plan produced an unbalanced mesh"
        );
    }

    /// Runs refinement steps until the mesh no longer changes (used for
    /// the initial refinement before the main loop), bounded by
    /// `num_refine` steps.
    pub fn refine_to_fixpoint(&mut self, objects: &[Object]) -> usize {
        let mut steps = 0;
        for _ in 0..=self.params.num_refine {
            let plan = self.plan_refinement(objects);
            if plan.is_empty() {
                break;
            }
            self.apply_plan(&plan);
            steps += 1;
        }
        steps
    }

    /// Total cells across active blocks (each block has the same count;
    /// convenience for workload accounting).
    pub fn total_cells(&self) -> usize {
        self.len() * self.params.cells_per_block()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dir2() -> MeshDirectory {
        MeshDirectory::initial(MeshParams::test_small())
    }

    #[test]
    fn initial_mesh_is_root_grid() {
        let d = dir2();
        assert_eq!(d.len(), 8);
        assert!(d.check_balance().is_ok());
        assert_eq!(d.owner(&BlockId::new(0, 0, 0, 0)), Some(0));
    }

    #[test]
    fn neighbor_info_same_level() {
        let d = dir2();
        let b = BlockId::new(0, 0, 0, 0);
        assert_eq!(
            d.neighbor_info(&b, Dir::X, Side::Lo),
            NeighborInfo::Boundary
        );
        assert_eq!(
            d.neighbor_info(&b, Dir::X, Side::Hi),
            NeighborInfo::Same(BlockId::new(0, 1, 0, 0))
        );
    }

    #[test]
    fn refinement_splits_boundary_blocks() {
        let mut d = dir2();
        let sphere = Object::sphere([0.5, 0.5, 0.5], 0.3, [0.0; 3]);
        let plan = d.plan_refinement(&[sphere]);
        assert!(!plan.splits.is_empty());
        assert!(plan.merges.is_empty(), "nothing to coarsen at level 0");
        let before = d.len();
        d.apply_plan(&plan);
        // Each split adds 7 net blocks.
        assert_eq!(d.len(), before + 7 * plan.splits.len());
        assert!(d.check_balance().is_ok());
    }

    #[test]
    fn finer_neighbors_resolved_after_split() {
        let mut d = dir2();
        // Split exactly one corner block.
        let target = BlockId::new(0, 0, 0, 0);
        let plan = RefinePlan {
            splits: vec![target],
            merges: vec![],
        };
        d.apply_plan(&plan);
        let right = BlockId::new(0, 1, 0, 0);
        match d.neighbor_info(&right, Dir::X, Side::Lo) {
            NeighborInfo::Finer(f) => {
                for b in f {
                    assert_eq!(b.level, 1);
                    assert_eq!(b.x, 1);
                }
            }
            other => panic!("expected finer neighbors, got {other:?}"),
        }
        // And the fine block sees the coarse one.
        let fine = BlockId::new(1, 1, 0, 0);
        assert_eq!(
            d.neighbor_info(&fine, Dir::X, Side::Hi),
            NeighborInfo::Coarser(right)
        );
    }

    #[test]
    fn object_leaving_region_coarsens_it_back() {
        let mut d = dir2();
        let mut sphere = Object::sphere([0.25, 0.25, 0.25], 0.15, [0.5, 0.5, 0.5]);
        d.refine_to_fixpoint(&[sphere.clone()]);
        let refined = d.len();
        assert!(refined > 8);
        // Move the object away and re-plan: the old region coarsens.
        sphere.step(); // center now (0.75, 0.75, 0.75)
        let mut last = d.len();
        for _ in 0..4 {
            let plan = d.plan_refinement(&[sphere.clone()]);
            d.apply_plan(&plan);
            last = d.len();
        }
        assert!(d.check_balance().is_ok());
        // Still refined (object still in the mesh) but around the new
        // position; old corner went back toward level 0.
        let corner_children = BlockId::new(0, 0, 0, 0).children();
        let active_fine = corner_children.iter().filter(|c| d.contains(c)).count();
        assert_eq!(active_fine, 0, "old corner did not coarsen, {last} blocks");
    }

    #[test]
    fn two_to_one_propagation_forces_intermediate_levels() {
        let p = MeshParams {
            num_refine: 3,
            ..MeshParams::test_small()
        };
        let mut d = MeshDirectory::initial(p);
        // A tiny object in one corner, refined to the maximum level.
        let tiny = Object::sphere([0.06, 0.06, 0.06], 0.04, [0.0; 3]);
        d.refine_to_fixpoint(&[tiny]);
        assert!(d.check_balance().is_ok());
        // There must be blocks at intermediate levels forming the graded
        // transition.
        let mut levels: Vec<u8> = d.iter().map(|(b, _)| b.level).collect();
        levels.sort_unstable();
        levels.dedup();
        assert!(levels.contains(&3), "max level not reached: {levels:?}");
        assert!(
            levels.contains(&2) && levels.contains(&1),
            "no graded transition: {levels:?}"
        );
    }

    #[test]
    fn merges_keep_first_childs_owner() {
        let mut d = dir2();
        let target = BlockId::new(0, 1, 1, 1); // owned by rank 0 (single-rank mesh)
        d.apply_plan(&RefinePlan {
            splits: vec![target],
            merges: vec![],
        });
        // Reassign one child to a fictitious rank then merge back.
        let children = target.children();
        d.set_owner(children[0], 5);
        d.apply_plan(&RefinePlan {
            splits: vec![],
            merges: vec![target],
        });
        assert_eq!(d.owner(&target), Some(5));
        assert_eq!(d.len(), 8);
    }

    #[test]
    fn counts_per_rank_sum_to_len() {
        let p = MeshParams {
            npx: 2,
            npy: 1,
            npz: 1,
            init_x: 1,
            init_y: 2,
            init_z: 2,
            ..MeshParams::test_small()
        };
        let d = MeshDirectory::initial(p);
        let counts = d.counts_per_rank(2);
        assert_eq!(counts.iter().sum::<usize>(), d.len());
        assert_eq!(counts, vec![4, 4]);
    }

    #[test]
    fn refinement_is_deterministic() {
        let mk = || {
            let mut d = dir2();
            let sphere = Object::sphere([0.4, 0.6, 0.3], 0.25, [0.0; 3]);
            d.refine_to_fixpoint(&[sphere]);
            d
        };
        let a = mk();
        let b = mk();
        assert_eq!(a, b);
    }
}
