#!/usr/bin/env bash
# Tier-1 CI gate: release build, full test suite, lint wall.
#
# Run from the repo root (or anywhere inside it). Mirrors what the
# driver enforces, plus `--workspace` so every crate's tests run, not
# just the root package's.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q (tier-1, root package)"
cargo test -q

echo "==> cargo test --workspace -q (all crates)"
cargo test --workspace -q

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "CI OK"
