#!/usr/bin/env bash
# Tier-1 CI gate: release build, full test suite, lint wall.
#
# Run from the repo root (or anywhere inside it). Mirrors what the
# driver enforces, plus `--workspace` so every crate's tests run, not
# just the root package's.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q (tier-1, root package)"
cargo test -q

echo "==> cargo test --workspace -q (all crates)"
cargo test --workspace -q

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --check

# --- Observability smoke tests (PR 2) -------------------------------------
# The root `cargo build --release` only builds the root package; the
# miniamr CLI binary needs an explicit -p.
echo "==> cargo build --release -p miniamr"
cargo build --release -p miniamr
MINIAMR=target/release/miniamr

# Traced smoke run: each variant must produce a merged Chrome trace that
# parses as JSON and contains every rank's process metadata.
for variant in mpi forkjoin dataflow; do
  echo "==> traced smoke run: $variant"
  trace="$(mktemp /tmp/miniamr-trace-XXXXXX.json)"
  "$MINIAMR" --variant "$variant" --npx 2 --npy 2 --nx 6 --ny 6 --nz 6 \
      --num_vars 4 --num_tsteps 2 --input single_sphere \
      --trace-json "$trace" --metrics >/dev/null
  python3 - "$trace" <<'PY'
import json, sys
events = json.load(open(sys.argv[1]))["traceEvents"]
ranks = {e["pid"] for e in events
         if e.get("ph") == "M" and e.get("name") == "process_name"
         and e["args"]["name"].startswith("rank ")}
assert ranks == {0, 1, 2, 3}, f"expected ranks 0..3 in trace, got {sorted(ranks)}"
PY
  rm -f "$trace"
done

# Watchdog self-test: the seed's group-offset bug (kept behind
# --legacy_group_offsets) deadlocks the data-flow variant; the stall
# watchdog must detect it, dump blocked tasks + unmatched messages, and
# exit 86 instead of hanging. Exactly where the hang lands is
# scheduling-dependent — occasionally the mailboxes are drained and only
# blocked tasks remain — so retry until one run shows both sections.
echo "==> watchdog self-test (known-deadlock config)"
wd_ok=0
for attempt in 1 2 3; do
  set +e
  wd_out="$(timeout 60 "$MINIAMR" --variant dataflow --comm_vars 3 --send_faces \
      --npx 2 --nx 6 --ny 6 --nz 6 --num_vars 8 --num_tsteps 3 \
      --input single_sphere --legacy_group_offsets --watchdog_ms 3000 2>&1)"
  wd_rc=$?
  set -e
  if [ "$wd_rc" -ne 86 ]; then
    echo "watchdog self-test: expected exit 86, got $wd_rc (attempt $attempt)" >&2
    echo "$wd_out" >&2
    exit 1
  fi
  # No pipes here: with pipefail, `grep -q` exiting at the first match
  # SIGPIPEs the echo and fails the pipeline despite the match.
  if grep -q "unmatched" <<<"$wd_out" && grep -q "pending tasks" <<<"$wd_out"; then
    wd_ok=1
    break
  fi
  echo "    attempt $attempt: exit 86 but dump incomplete; retrying"
done
if [ "$wd_ok" -ne 1 ]; then
  echo "watchdog dump never showed both unmatched messages and pending tasks" >&2
  echo "$wd_out" >&2
  exit 1
fi

# --- Sanitizer smoke tests (PR 3) -----------------------------------------
# All three variants must run clean under --sanitize: zero violations,
# checksums still validated, exit 0.
for variant in mpi forkjoin dataflow; do
  echo "==> sanitized smoke run: $variant"
  san_out="$("$MINIAMR" --variant "$variant" --sanitize --npx 2 --npy 2 \
      --nx 6 --ny 6 --nz 6 --num_vars 4 --num_tsteps 2 \
      --input single_sphere 2>&1)"
  if ! grep -q "depsan: no violations detected" <<<"$san_out"; then
    echo "sanitized $variant run did not report a clean bill" >&2
    echo "$san_out" >&2
    exit 1
  fi
done

# Sanitizer regression: the same legacy group-offset bug the watchdog
# only times out on must be *diagnosed* by depsan — a tag-size lint
# naming the aliased same-tag traffic — and exit 97 before the watchdog
# (5 s) can fire.
echo "==> depsan legacy-bug regression (expect exit 97)"
set +e
san_out="$(timeout 60 "$MINIAMR" --variant dataflow --sanitize --comm_vars 3 \
    --send_faces --npx 2 --nx 6 --ny 6 --nz 6 --num_vars 8 --num_tsteps 3 \
    --input single_sphere --legacy_group_offsets --watchdog_ms 5000 2>&1)"
san_rc=$?
set -e
if [ "$san_rc" -ne 97 ]; then
  echo "depsan regression: expected exit 97, got $san_rc" >&2
  echo "$san_out" >&2
  exit 1
fi
if ! grep -q "depsan: violation: tag-size-mismatch" <<<"$san_out"; then
  echo "depsan regression: exit 97 but no tag-size-mismatch report" >&2
  echo "$san_out" >&2
  exit 1
fi

# --- Static verifier (PR 8) -------------------------------------------------
# Pre-flight on the clean smoke scenario: all three variants must pass the
# static check and then complete the run normally.
DFCHECK=target/release/dfcheck
for variant in mpi forkjoin dataflow; do
  echo "==> staticcheck pre-flight: $variant"
  sc_out="$(timeout 60 "$MINIAMR" --staticcheck --variant "$variant" --npx 2 --npy 2 \
      --nx 6 --ny 6 --nz 6 --num_vars 4 --num_tsteps 2 --input single_sphere 2>&1)"
  if ! grep -q "staticcheck: clean" <<<"$sc_out"; then
    echo "staticcheck pre-flight: $variant did not come back clean" >&2
    echo "$sc_out" >&2
    exit 1
  fi
done

# Static regression: the legacy group-offset bug must be flagged *before a
# single timestep runs* — exit 95, a tag-collision naming the aliased
# sends, and the slot-arithmetic warning, with no worker ever spawned.
echo "==> staticcheck legacy-bug regression (expect exit 95)"
set +e
sc_out="$(timeout 60 "$MINIAMR" --staticcheck --variant dataflow --comm_vars 3 \
    --send_faces --npx 2 --nx 6 --ny 6 --nz 6 --num_vars 8 --num_tsteps 3 \
    --input single_sphere --legacy_group_offsets 2>&1)"
sc_rc=$?
set -e
if [ "$sc_rc" -ne 95 ]; then
  echo "staticcheck regression: expected exit 95, got $sc_rc" >&2
  echo "$sc_out" >&2
  exit 1
fi
for needle in "tag-collision" "buffer-slot-overlap" "miniamr-dfcheck-report"; do
  if ! grep -q "$needle" <<<"$sc_out"; then
    echo "staticcheck regression: exit 95 but report lacks '$needle'" >&2
    echo "$sc_out" >&2
    exit 1
  fi
done

# dfcheck-vs-depsan agreement smoke: the standalone verifier and the
# dynamic sanitizer must agree on both sides of the legacy bug — the
# clean scenario passes both (dfcheck --all exit 0; the sanitized runs
# above already came back clean), and the buggy one fails both (exit 95
# statically, exit 97 dynamically per the depsan regression above).
echo "==> dfcheck standalone: clean scenario, all variants (expect exit 0)"
"$DFCHECK" --all --npx 2 --npy 2 --nx 6 --ny 6 --nz 6 --num_vars 4 \
    --num_tsteps 2 --input single_sphere >/dev/null
echo "==> dfcheck standalone: legacy scenario (expect exit 95)"
set +e
timeout 60 "$DFCHECK" --variant dataflow --comm_vars 3 --send_faces \
    --npx 2 --nx 6 --ny 6 --nz 6 --num_vars 8 --num_tsteps 3 \
    --input single_sphere --legacy_group_offsets >/dev/null 2>&1
df_rc=$?
set -e
if [ "$df_rc" -ne 95 ]; then
  echo "dfcheck standalone: expected exit 95 on the legacy scenario, got $df_rc" >&2
  exit 1
fi

# --- Chaos transport soak (PR 4) ------------------------------------------
# The headline reliability guarantee: under any seeded fault plan whose
# losses stay within the retry budget, every variant's checksum digest is
# bitwise-identical to its fault-free run — the ack/retransmit layer
# absorbs drops, duplicates, corruption and delay spikes invisibly.
chaos_mesh=(--npx 2 --npy 1 --npz 1 --nx 8 --ny 8 --nz 8
            --init_x 2 --init_y 2 --init_z 2 --num_refine 2
            --max_blocks 600 --num_tsteps 4 --stages_per_ts 4)
chaos_plan=(--chaos_drop 0.08 --chaos_dup 0.05 --chaos_corrupt 0.05
            --chaos_delay 0.2 --chaos_retry 20 --chaos_rto_us 2000
            --ckpt_freq 4)
for variant in mpi forkjoin dataflow; do
  echo "==> chaos soak: $variant"
  base_out="$(timeout 60 "$MINIAMR" --variant "$variant" "${chaos_mesh[@]}" 2>&1)"
  base_digest="$(awk '$1 == "checksum_digest" { print $2 }' <<<"$base_out")"
  if [ -z "$base_digest" ]; then
    echo "chaos soak: fault-free $variant run printed no checksum_digest" >&2
    echo "$base_out" >&2
    exit 1
  fi
  for seed in 7 42 1337; do
    chaos_out="$(timeout 60 "$MINIAMR" --variant "$variant" "${chaos_mesh[@]}" \
        --chaos_seed "$seed" "${chaos_plan[@]}" 2>&1)"
    chaos_digest="$(awk '$1 == "checksum_digest" { print $2 }' <<<"$chaos_out")"
    if [ "$chaos_digest" != "$base_digest" ]; then
      echo "chaos soak: $variant seed $seed digest '$chaos_digest' != fault-free '$base_digest'" >&2
      echo "$chaos_out" >&2
      exit 1
    fi
    if ! grep -q "checkpoints_taken" <<<"$chaos_out"; then
      echo "chaos soak: $variant seed $seed never took a checkpoint" >&2
      echo "$chaos_out" >&2
      exit 1
    fi
  done
done

# Unrecoverable hard-crash: rank 1 dies mid-run per plan. The survivor
# must detect it (retry-budget exhaustion or heartbeat timeout), restore
# its latest checkpoint, verify the digest, print the structured report,
# and exit 88 — never hang.
echo "==> unrecoverable-crash case (expect exit 88, structured report)"
set +e
crash_out="$(timeout 60 "$MINIAMR" --variant mpi "${chaos_mesh[@]}" \
    --chaos_seed 42 --chaos_crash_rank 1 --chaos_crash_after 10 \
    --chaos_retry 3 --chaos_rto_us 1000 --ckpt_freq 1 2>&1)"
crash_rc=$?
set -e
if [ "$crash_rc" -ne 88 ]; then
  echo "unrecoverable-crash: expected exit 88, got $crash_rc" >&2
  echo "$crash_out" >&2
  exit 1
fi
for needle in "chaos: peer lost" "hard-crashed per plan" \
              "restored from checkpoint" "verified after restore" \
              "exiting with code 88"; do
  if ! grep -q "$needle" <<<"$crash_out"; then
    echo "unrecoverable-crash: exit 88 but report lacks '$needle'" >&2
    echo "$crash_out" >&2
    exit 1
  fi
done

# --- Contention-aware fabric (PR 5) ----------------------------------------
# Table II reproduction: the full-size granularity sweep must place the
# optimum message count inside the paper's 4..16 band with
# one-message-per-face worst. The binary's own shape_checks (including
# the optimum-band check, which only runs at full size) exit non-zero on
# failure; the grep below is a belt-and-braces guard on the headline.
echo "==> table2 granularity sweep (shared fabric cost model)"
t2_out="$(cargo run --release -q -p amr-bench --bin table2)"
echo "$t2_out"
if ! grep -qE "^# observed optimum: (4|8|16) " <<<"$t2_out"; then
  echo "table2: observed optimum outside the paper's 4..16 band" >&2
  exit 1
fi

# Fabric on/off digest parity: the contention model shifts *when*
# messages become available, never *what* they carry — every variant's
# checksum digest must be bitwise identical with the fabric on and off.
fab_mesh=(--npx 2 --npy 2 --nx 6 --ny 6 --nz 6 --num_vars 4
          --num_tsteps 3 --input single_sphere --ranks_per_node 2)
for variant in mpi forkjoin dataflow; do
  echo "==> fabric digest parity: $variant"
  on_out="$(timeout 60 "$MINIAMR" --variant "$variant" "${fab_mesh[@]}" --fabric on 2>&1)"
  off_out="$(timeout 60 "$MINIAMR" --variant "$variant" "${fab_mesh[@]}" --fabric off 2>&1)"
  d_on="$(awk '$1 == "checksum_digest" { print $2 }' <<<"$on_out")"
  d_off="$(awk '$1 == "checksum_digest" { print $2 }' <<<"$off_out")"
  if [ -z "$d_on" ] || [ "$d_on" != "$d_off" ]; then
    echo "fabric parity: $variant digest on='$d_on' off='$d_off'" >&2
    echo "$on_out" >&2
    exit 1
  fi
done

# CLI validation regression: a meaningless bandwidth must be a usage
# error at parse time (exit 2), not a Duration::from_secs_f64 panic on
# the delivery thread mid-run.
echo "==> network-parameter validation (expect exit 2)"
set +e
bw_out="$(timeout 60 "$MINIAMR" --variant mpi --npx 2 --nx 6 --ny 6 --nz 6 \
    --num_vars 4 --num_tsteps 1 --input single_sphere --bandwidth_gbps 0 2>&1)"
bw_rc=$?
set -e
if [ "$bw_rc" -ne 2 ] || ! grep -q "invalid network parameters" <<<"$bw_out"; then
  echo "bandwidth validation: expected exit 2 with a usage error, got rc=$bw_rc" >&2
  echo "$bw_out" >&2
  exit 1
fi

# --- Topology-aware collectives & face coalescing (PR 10) ------------------
# `--coll hier --coalesce on` reshapes the transport only: two-level
# collectives over node leaders and one merged flow per inter-node
# neighbor group must leave every variant's checksum digest bitwise
# identical to the flat, uncoalesced reference. --ranks_per_node 2
# splits the 4 smoke ranks into 2 simulated nodes (both the intra-node
# slot stage and the inter-node leader stage run); --eager_kb 0 forces
# every inter-node group over the coalescing threshold; --send_faces
# --comm_vars 2 give the coalescer real per-face messages to merge.
coll_mesh=(--npx 2 --npy 2 --nx 6 --ny 6 --nz 6 --num_vars 4
           --num_tsteps 3 --input single_sphere --send_faces --comm_vars 2
           --ranks_per_node 2)
for variant in mpi forkjoin dataflow; do
  echo "==> collectives digest parity: $variant"
  flat_out="$(timeout 60 "$MINIAMR" --variant "$variant" "${coll_mesh[@]}" \
      --coll flat --coalesce off 2>&1)"
  hier_out="$(timeout 60 "$MINIAMR" --variant "$variant" "${coll_mesh[@]}" \
      --coll hier --coalesce on --eager_kb 0 2>&1)"
  d_flat="$(awk '$1 == "checksum_digest" { print $2 }' <<<"$flat_out")"
  d_hier="$(awk '$1 == "checksum_digest" { print $2 }' <<<"$hier_out")"
  if [ -z "$d_flat" ] || [ "$d_flat" != "$d_hier" ]; then
    echo "collectives parity: $variant digest flat='$d_flat' hier+coalesce='$d_hier'" >&2
    echo "$hier_out" >&2
    exit 1
  fi
done

# Sanitized hier smoke: the intra-node slot stage bypasses the message
# layer entirely; depsan must still come back clean on the reshaped
# plan.
echo "==> sanitized hier+coalesce smoke: dataflow"
san_out="$(timeout 60 "$MINIAMR" --variant dataflow --sanitize "${coll_mesh[@]}" \
    --coll hier --coalesce on --eager_kb 0 2>&1)"
if ! grep -q "depsan: no violations detected" <<<"$san_out"; then
  echo "sanitized hier+coalesce run did not report a clean bill" >&2
  echo "$san_out" >&2
  exit 1
fi

# dfcheck must accept and verify the reshaped (coalesced) plan — the
# scenario flags are shared, so the static model sees the merged flows.
echo "==> dfcheck on the coalesced plan (expect exit 0)"
timeout 120 "$DFCHECK" --all "${coll_mesh[@]}" \
    --coll hier --coalesce on --eager_kb 0 >/dev/null

# Exchange-livelock regression: two completely full ranks swapping
# equal block counts must converge instead of starving each other
# (Phase A credits this round's outgoing moves as capacity).
echo "==> exchange livelock regression (two-full-ranks swap)"
cargo test -q -p miniamr --test exchange_protocol \
    exactly_full_ranks_swap_converges >/dev/null

# --- Task-graph trace & replay cache (PR 6) --------------------------------
# Replay must be numerically invisible: with a run long enough for the
# trace to warm up (3 recordings per regrid epoch) and replay, and with
# regrids + checkpoints invalidating mid-run, every variant's checksum
# digest must be bitwise identical with --replay on and off.
replay_mesh=(--npx 2 --npy 2 --nx 6 --ny 6 --nz 6 --num_vars 4
             --num_tsteps 10 --refine_freq 5 --ckpt_freq 8
             --input single_sphere)
df_on_out=""
for variant in mpi forkjoin dataflow; do
  echo "==> replay digest parity: $variant"
  on_out="$(timeout 60 "$MINIAMR" --variant "$variant" "${replay_mesh[@]}" --replay on 2>&1)"
  off_out="$(timeout 60 "$MINIAMR" --variant "$variant" "${replay_mesh[@]}" --replay off 2>&1)"
  d_on="$(awk '$1 == "checksum_digest" { print $2 }' <<<"$on_out")"
  d_off="$(awk '$1 == "checksum_digest" { print $2 }' <<<"$off_out")"
  if [ -z "$d_on" ] || [ "$d_on" != "$d_off" ]; then
    echo "replay parity: $variant digest on='$d_on' off='$d_off'" >&2
    echo "$on_out" >&2
    exit 1
  fi
  if [ "$variant" = dataflow ]; then df_on_out="$on_out"; fi
done

# The parity check is vacuous unless the data-flow replay-on run actually
# replayed — assert the counters the binary prints.
replayed="$(awk '$1 == "tasks_replayed" { print $2 }' <<<"$df_on_out")"
hits="$(awk '$1 == "trace_hits" { print $2 }' <<<"$df_on_out")"
if [ -z "$replayed" ] || [ "$replayed" -eq 0 ] || [ -z "$hits" ] || [ "$hits" -eq 0 ]; then
  echo "replay parity: dataflow --replay on never replayed (tasks_replayed='$replayed', trace_hits='$hits')" >&2
  echo "$df_on_out" >&2
  exit 1
fi

# Sanitized replay: depsan re-verifies every replayed edge set against
# its own record-mode shadow, so --sanitize --replay on must still come
# back clean. (The depsan legacy-bug regression above already runs with
# replay at its default of on, proving real violations still exit 97.)
echo "==> sanitized replay smoke: dataflow"
san_out="$(timeout 60 "$MINIAMR" --variant dataflow --sanitize "${replay_mesh[@]}" --replay on 2>&1)"
if ! grep -q "depsan: no violations detected" <<<"$san_out"; then
  echo "sanitized replay run did not report a clean bill" >&2
  echo "$san_out" >&2
  exit 1
fi

# Replay perf gate: spawn_1000_chained replays a stable 1000-task chain
# and must stay under 1.5 ms/iter (the PR 5 claim-table path took
# ~7.7 ms); bench_compare.py guards the rest of the suite against
# extreme regressions relative to the committed PR 6 baseline (loose
# threshold: the shim reports fastest-of-few-samples on a shared box).
echo "==> replay bench gate (spawn_1000_chained <= 1.5 ms)"
bench_json="$(mktemp /tmp/miniamr-bench-XXXXXX.json)"
rm -f "$bench_json"  # the shim appends; start clean
CRITERION_JSON="$bench_json" cargo bench -q -p amr-bench --bench runtime >/dev/null
python3 - "$bench_json" <<'PY'
import json, sys
runs = {(r["group"], r["name"]): r["ns_per_iter"]
        for r in map(json.loads, open(sys.argv[1]))}
chained = runs[("taskrt", "spawn_1000_chained")]
assert chained <= 1_500_000, f"spawn_1000_chained too slow: {chained:.0f} ns/iter"
norep = runs[("taskrt", "spawn_1000_chained_noreplay")]
assert chained < norep / 2, (
    f"replay not ahead of fresh analysis: {chained:.0f} vs {norep:.0f} ns/iter")
# Collective gate (PR 10): the hierarchical allreduce must not lose to
# its in-run flat companion. It typically wins by 3-10% (BENCH_PR10.json
# pins a measured run); the 15% headroom only absorbs scheduler noise on
# a shared single-core box — the companion controls for machine drift.
hier = runs[("vmpi", "allreduce_8ranks")]
flat = runs[("vmpi", "allreduce_8ranks_flat")]
assert hier <= flat * 1.15, (
    f"hier allreduce regressed past its flat companion: {hier:.0f} vs {flat:.0f} ns/iter")
PY
python3 scripts/bench_compare.py BENCH_PR10.json "$bench_json" --threshold 1.0 --quiet
rm -f "$bench_json"

# --- Causal perf analyzer (PR 7) -------------------------------------------
# The 4-rank data-flow smoke must emit a schema-valid perf report whose
# per-timestep critical-path categories telescope to the window's
# wall-clock exactly (so the 5% acceptance bound holds by construction),
# whose per-rank overlap fractions match the legacy recorder's stdout
# lines within 0.02 (they share one sweep and one clock), and whose
# Perfetto export carries balanced send->recv flow arrows.
# --obs_ring 262144 keeps every event; the report's own "dropped" field
# is the overflow guard.
echo "==> causal perf analyzer: 4-rank dataflow report"
perf_json="$(mktemp /tmp/miniamr-perf-XXXXXX.json)"
perf_trace="$(mktemp /tmp/miniamr-perftrace-XXXXXX.json)"
perf_out="$(timeout 120 "$MINIAMR" --variant dataflow --npx 2 --npy 2 \
    --nx 8 --ny 8 --nz 8 --num_vars 4 --num_tsteps 4 --input single_sphere \
    --trace --obs_ring 262144 --perf_report "$perf_json" \
    --trace-json "$perf_trace" 2>/dev/null)"
OVERLAP_LINES="$(awk '$1 == "rank" && $3 == "overlap_fraction" { print $2, $4 }' \
    <<<"$perf_out")" python3 - "$perf_json" "$perf_trace" <<'PY'
import json, os, sys
doc = json.load(open(sys.argv[1]))
assert doc.get("schema") == "miniamr-perf-report" and doc.get("version") == 1, "bad schema"
assert doc["dropped"] == 0, f"ring overflow dropped {doc['dropped']} events"
assert len(doc["timesteps"]) == 4, f"expected 4 windows, got {len(doc['timesteps'])}"
for t in doc["timesteps"]:
    cp = t["critical_path"]
    cats = (cp["compute_us"] + cp["pack_us"] + cp["transit_us"]
            + cp["wait_us"] + cp["runtime_us"])
    assert cats == cp["total_us"], (
        f"tstep {t['tstep']}: categories {cats} != total {cp['total_us']}")
    assert abs(cats - t["wall_us"]) <= 0.05 * t["wall_us"], (
        f"tstep {t['tstep']}: path {cats} vs wall {t['wall_us']}")
    assert cp["nodes"] > 0, f"tstep {t['tstep']} walked no nodes"
recorder = {}
for line in os.environ["OVERLAP_LINES"].splitlines():
    rank, frac = line.split()
    recorder[int(rank)] = float(frac)
assert recorder, "no recorder overlap lines on stdout"
for r in doc["ranks_detail"]:
    rec = recorder[r["rank"]]
    assert abs(rec - r["overlap_fraction"]) <= 0.02, (
        f"rank {r['rank']}: recorder {rec} vs analyzer {r['overlap_fraction']}")
trace = open(sys.argv[2]).read()
s, f = trace.count('"ph":"s"'), trace.count('"ph":"f"')
assert s > 0 and s == f, f"flow arrows unbalanced: {s} starts vs {f} finishes"
PY

# Report-diff plumbing smoke: the same document compared to itself must
# come out all-1.00x and exit 0 (exercises bench_compare.py's
# perf-report path deterministically).
python3 scripts/bench_compare.py BENCH_PR10.json BENCH_PR10.json \
    --report-old "$perf_json" --report-new "$perf_json" --quiet >/dev/null
rm -f "$perf_json" "$perf_trace"

# --- Elastic service mode (PR 9) -------------------------------------------
# Malleability must be physics-neutral: a run that grows and/or shrinks
# its rank world mid-flight — by plan (--resize_at) or by failure
# (--on_peer_lost shrink after a hard crash) — must land on the exact
# checksum digest of the fixed-rank, fault-free run. The digest folds
# per-block sums in global block-id order, so ownership moves are
# invisible by construction; this stage is the end-to-end proof.
el_mesh=(--npx 2 --npy 2 --npz 1 --nx 6 --ny 6 --nz 6 --num_vars 4
         --num_tsteps 6 --stages_per_ts 4 --checksum_freq 2
         --refine_freq 2 --num_refine 2)
df_fixed=""
for variant in mpi forkjoin dataflow; do
  echo "==> elastic digest parity: $variant"
  fixed_out="$(timeout 60 "$MINIAMR" --variant "$variant" "${el_mesh[@]}" 2>&1)"
  fixed_digest="$(awk '$1 == "checksum_digest" { print $2 }' <<<"$fixed_out")"
  if [ -z "$fixed_digest" ]; then
    echo "elastic: fixed-rank $variant run printed no checksum_digest" >&2
    echo "$fixed_out" >&2
    exit 1
  fi
  if [ "$variant" = dataflow ]; then df_fixed="$fixed_digest"; fi
  # Grow 4->8; grow then shrink back 8->4; pure shrink 4->2.
  for plan in "--resize_at 2:8" \
              "--resize_at 2:8 --resize_at 4:4" \
              "--resize_at 3:2"; do
    # shellcheck disable=SC2086
    el_out="$(timeout 60 "$MINIAMR" --variant "$variant" "${el_mesh[@]}" $plan 2>&1)"
    el_digest="$(awk '$1 == "checksum_digest" { print $2 }' <<<"$el_out")"
    if ! grep -q "elastic plan" <<<"$el_out"; then
      echo "elastic: $variant '$plan' never armed the resize plan" >&2
      echo "$el_out" >&2
      exit 1
    fi
    if [ "$el_digest" != "$fixed_digest" ]; then
      echo "elastic: $variant '$plan' digest '$el_digest' != fixed '$fixed_digest'" >&2
      echo "$el_out" >&2
      exit 1
    fi
  done
done

# Shrink-on-failure: rank 3's NIC hard-crashes mid-run (frame 340 is
# past the initial refinement exchange, so a coordinated boundary
# snapshot exists). Instead of the exit-88 abort, the survivors rewind
# to the latest coordinated boundary, the world shrinks onto them, and
# the run must complete with the fault-free digest. The data-flow
# variant is the hard case: the failure surfaces on the delivery thread
# inside a tampi callback and has to unwind through the poisoned task
# runtime to taskwait.
echo "==> shrink-on-failure: dataflow (expect shrink + fixed digest)"
sh_out="$(timeout 60 "$MINIAMR" --variant dataflow "${el_mesh[@]}" \
    --chaos_seed 7 --chaos_crash_rank 3 --chaos_crash_after 340 \
    --chaos_retry 4 --chaos_rto_us 2000 --on_peer_lost shrink 2>&1)"
sh_digest="$(awk '$1 == "checksum_digest" { print $2 }' <<<"$sh_out")"
if ! grep -q "shrinking 4 -> 3 ranks" <<<"$sh_out"; then
  echo "shrink-on-failure: the world never shrank" >&2
  echo "$sh_out" >&2
  exit 1
fi
if [ "$sh_digest" != "$df_fixed" ]; then
  echo "shrink-on-failure: digest '$sh_digest' != fixed '$df_fixed'" >&2
  echo "$sh_out" >&2
  exit 1
fi

# Checkpoint-mismatch regression: a corrupt restored checkpoint must be
# a structured failure (miniamr-ckpt-mismatch JSON + exit 88), never a
# silent "MISMATCH, continuing" resume. MINIAMR_TEST_CORRUPT_CKPT
# flips one cell after the digest is recorded, so the recovery hook's
# re-verification must trip.
echo "==> checkpoint-mismatch regression (expect exit 88 + JSON report)"
set +e
mm_out="$(MINIAMR_TEST_CORRUPT_CKPT=1 timeout 60 "$MINIAMR" --variant mpi \
    "${chaos_mesh[@]}" --chaos_seed 42 --chaos_crash_rank 1 \
    --chaos_crash_after 10 --chaos_retry 3 --chaos_rto_us 1000 \
    --ckpt_freq 1 2>&1)"
mm_rc=$?
set -e
if [ "$mm_rc" -ne 88 ]; then
  echo "ckpt-mismatch regression: expected exit 88, got $mm_rc" >&2
  echo "$mm_out" >&2
  exit 1
fi
if ! grep -q "miniamr-ckpt-mismatch" <<<"$mm_out"; then
  echo "ckpt-mismatch regression: exit 88 but no structured JSON report" >&2
  echo "$mm_out" >&2
  exit 1
fi

# Sanitized multi-job soak: 4 complete scenario instances resize
# concurrently in one process under depsan. Per-job keying of the
# checkpoint store, boundary registry and trace epochs is what this
# breaks without; every job's digest must equal the fixed-rank run's.
echo "==> sanitized 4-job elastic soak: dataflow"
soak_out="$(timeout 120 "$MINIAMR" --variant dataflow "${el_mesh[@]}" --sanitize \
    --jobs 4 --resize_at 2:8 --resize_at 4:3 2>&1)"
soak_digests="$(awk '$1 ~ /^job[0-9]+_checksum_digest$/ { print $2 }' <<<"$soak_out")"
if [ "$(wc -l <<<"$soak_digests")" -ne 4 ]; then
  echo "elastic soak: expected 4 per-job digests" >&2
  echo "$soak_out" >&2
  exit 1
fi
if [ "$(sort -u <<<"$soak_digests" | tr -d '[:space:]')" != "$df_fixed" ]; then
  echo "elastic soak: per-job digests diverged from fixed '$df_fixed':" >&2
  echo "$soak_digests" >&2
  echo "$soak_out" >&2
  exit 1
fi
if ! grep -q "depsan: no violations detected" <<<"$soak_out"; then
  echo "elastic soak: sanitized run did not report a clean bill" >&2
  echo "$soak_out" >&2
  exit 1
fi

echo "CI OK"
