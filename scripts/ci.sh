#!/usr/bin/env bash
# Tier-1 CI gate: release build, full test suite, lint wall.
#
# Run from the repo root (or anywhere inside it). Mirrors what the
# driver enforces, plus `--workspace` so every crate's tests run, not
# just the root package's.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q (tier-1, root package)"
cargo test -q

echo "==> cargo test --workspace -q (all crates)"
cargo test --workspace -q

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

# --- Observability smoke tests (PR 2) -------------------------------------
# The root `cargo build --release` only builds the root package; the
# miniamr CLI binary needs an explicit -p.
echo "==> cargo build --release -p miniamr"
cargo build --release -p miniamr
MINIAMR=target/release/miniamr

# Traced smoke run: each variant must produce a merged Chrome trace that
# parses as JSON and contains every rank's process metadata.
for variant in mpi forkjoin dataflow; do
  echo "==> traced smoke run: $variant"
  trace="$(mktemp /tmp/miniamr-trace-XXXXXX.json)"
  "$MINIAMR" --variant "$variant" --npx 2 --npy 2 --nx 6 --ny 6 --nz 6 \
      --num_vars 4 --num_tsteps 2 --input single_sphere \
      --trace-json "$trace" --metrics >/dev/null
  python3 - "$trace" <<'PY'
import json, sys
events = json.load(open(sys.argv[1]))["traceEvents"]
ranks = {e["pid"] for e in events
         if e.get("ph") == "M" and e.get("name") == "process_name"
         and e["args"]["name"].startswith("rank ")}
assert ranks == {0, 1, 2, 3}, f"expected ranks 0..3 in trace, got {sorted(ranks)}"
PY
  rm -f "$trace"
done

# Watchdog self-test: the seed's group-offset bug (kept behind
# --legacy_group_offsets) deadlocks the data-flow variant; the stall
# watchdog must detect it, dump blocked tasks + unmatched messages, and
# exit 86 instead of hanging. Exactly where the hang lands is
# scheduling-dependent — occasionally the mailboxes are drained and only
# blocked tasks remain — so retry until one run shows both sections.
echo "==> watchdog self-test (known-deadlock config)"
wd_ok=0
for attempt in 1 2 3; do
  set +e
  wd_out="$(timeout 60 "$MINIAMR" --variant dataflow --comm_vars 3 --send_faces \
      --npx 2 --nx 6 --ny 6 --nz 6 --num_vars 8 --num_tsteps 3 \
      --input single_sphere --legacy_group_offsets --watchdog_ms 3000 2>&1)"
  wd_rc=$?
  set -e
  if [ "$wd_rc" -ne 86 ]; then
    echo "watchdog self-test: expected exit 86, got $wd_rc (attempt $attempt)" >&2
    echo "$wd_out" >&2
    exit 1
  fi
  # No pipes here: with pipefail, `grep -q` exiting at the first match
  # SIGPIPEs the echo and fails the pipeline despite the match.
  if grep -q "unmatched" <<<"$wd_out" && grep -q "pending tasks" <<<"$wd_out"; then
    wd_ok=1
    break
  fi
  echo "    attempt $attempt: exit 86 but dump incomplete; retrying"
done
if [ "$wd_ok" -ne 1 ]; then
  echo "watchdog dump never showed both unmatched messages and pending tasks" >&2
  echo "$wd_out" >&2
  exit 1
fi

# --- Sanitizer smoke tests (PR 3) -----------------------------------------
# All three variants must run clean under --sanitize: zero violations,
# checksums still validated, exit 0.
for variant in mpi forkjoin dataflow; do
  echo "==> sanitized smoke run: $variant"
  san_out="$("$MINIAMR" --variant "$variant" --sanitize --npx 2 --npy 2 \
      --nx 6 --ny 6 --nz 6 --num_vars 4 --num_tsteps 2 \
      --input single_sphere 2>&1)"
  if ! grep -q "depsan: no violations detected" <<<"$san_out"; then
    echo "sanitized $variant run did not report a clean bill" >&2
    echo "$san_out" >&2
    exit 1
  fi
done

# Sanitizer regression: the same legacy group-offset bug the watchdog
# only times out on must be *diagnosed* by depsan — a tag-size lint
# naming the aliased same-tag traffic — and exit 97 before the watchdog
# (5 s) can fire.
echo "==> depsan legacy-bug regression (expect exit 97)"
set +e
san_out="$(timeout 60 "$MINIAMR" --variant dataflow --sanitize --comm_vars 3 \
    --send_faces --npx 2 --nx 6 --ny 6 --nz 6 --num_vars 8 --num_tsteps 3 \
    --input single_sphere --legacy_group_offsets --watchdog_ms 5000 2>&1)"
san_rc=$?
set -e
if [ "$san_rc" -ne 97 ]; then
  echo "depsan regression: expected exit 97, got $san_rc" >&2
  echo "$san_out" >&2
  exit 1
fi
if ! grep -q "depsan: violation: tag-size-mismatch" <<<"$san_out"; then
  echo "depsan regression: exit 97 but no tag-size-mismatch report" >&2
  echo "$san_out" >&2
  exit 1
fi

echo "CI OK"
