#!/usr/bin/env python3
"""Compare two benchmark JSONL files (BENCH_*.json) emitted by the
criterion shim (CRITERION_JSON=out.json cargo bench).

Each line is {"group", "name", "ns_per_iter", ...}; benchmarks are keyed
by (group, name). Prints a table of ratios and exits 1 if any benchmark
present in both files regressed (new/old - 1) beyond the noise threshold.

With --report-old/--report-new, additionally diffs two
`miniamr-perf-report` documents (--perf_report output): wall-clock,
overlap fraction, and the critical path's per-category totals summed
over timesteps. Report metrics are informational — wait-time splits at
smoke scale are schedule-noisy — so they never affect the exit code;
the wall-clock gate stays with the benchmark table.

Usage:
    bench_compare.py OLD.json NEW.json [--threshold 0.35] [--quiet]
                     [--report-old PERF_OLD.json --report-new PERF_NEW.json]
"""

import argparse
import json
import sys


def load(path):
    runs = {}
    with open(path) as f:
        for lineno, line in enumerate(f, 1):
            line = line.strip()
            if not line:
                continue
            try:
                rec = json.loads(line)
                runs[(rec["group"], rec["name"])] = float(rec["ns_per_iter"])
            except (json.JSONDecodeError, KeyError, TypeError, ValueError) as e:
                sys.exit(f"{path}:{lineno}: malformed benchmark record: {e}")
    if not runs:
        sys.exit(f"{path}: no benchmark records")
    return runs


def report_metrics(path):
    """Flattens a miniamr-perf-report document into comparable scalars."""
    with open(path) as f:
        doc = json.load(f)
    if doc.get("schema") != "miniamr-perf-report":
        sys.exit(f"{path}: not a miniamr-perf-report document")
    metrics = {
        "wall_us": float(doc["wall_us"]),
        "overlap_fraction": float(doc["overlap_fraction"]),
        "critical_path_wait_us": float(doc["critical_path_wait_us"]),
    }
    for cat in ("compute", "pack", "transit", "wait", "runtime"):
        metrics[f"critpath_{cat}_us"] = float(
            sum(t["critical_path"][f"{cat}_us"] for t in doc["timesteps"])
        )
    return metrics


def diff_reports(old_path, new_path):
    old, new = report_metrics(old_path), report_metrics(new_path)
    print(f"\nperf-report diff: {old_path} -> {new_path} (informational)")
    width = max(map(len, old))
    for key, old_v in old.items():
        new_v = new[key]
        ratio = f"{new_v / old_v:6.2f}x" if old_v else "   n/a"
        print(f"{key:{width}}  {old_v:>14.3f} -> {new_v:>14.3f}  ({ratio})")


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("old", help="baseline JSONL (e.g. BENCH_PR5.json)")
    ap.add_argument("new", help="candidate JSONL (e.g. BENCH_PR6.json)")
    ap.add_argument(
        "--threshold",
        type=float,
        default=0.35,
        help="relative regression tolerated before failing; the shim "
        "reports fastest-of-few-samples, so single-run noise is large "
        "(default: %(default)s)",
    )
    ap.add_argument("--quiet", action="store_true", help="only print regressions")
    ap.add_argument("--report-old", help="baseline miniamr-perf-report JSON")
    ap.add_argument("--report-new", help="candidate miniamr-perf-report JSON")
    args = ap.parse_args()
    if bool(args.report_old) != bool(args.report_new):
        ap.error("--report-old and --report-new must be given together")

    old, new = load(args.old), load(args.new)
    shared = sorted(set(old) & set(new))
    if not shared:
        sys.exit("no benchmarks in common between the two files")

    regressions = []
    width = max(len(f"{g}/{n}") for g, n in shared)
    for key in shared:
        g, n = key
        ratio = new[key] / old[key]
        regressed = ratio > 1.0 + args.threshold
        if regressed:
            regressions.append((key, ratio))
        if not args.quiet or regressed:
            marker = "REGRESSED" if regressed else ("improved" if ratio < 1.0 - args.threshold else "")
            print(
                f"{f'{g}/{n}':{width}}  {old[key]:>14.1f} -> {new[key]:>14.1f} ns"
                f"  ({ratio:6.2f}x)  {marker}"
            )

    only_old = sorted(set(old) - set(new))
    only_new = sorted(set(new) - set(old))
    for g, n in only_old:
        print(f"note: {g}/{n} only in {args.old}")
    for g, n in only_new:
        print(f"note: {g}/{n} only in {args.new}")

    if args.report_old:
        diff_reports(args.report_old, args.report_new)

    if regressions:
        print(
            f"\n{len(regressions)} regression(s) beyond {args.threshold:.0%} "
            f"over {len(shared)} shared benchmarks"
        )
        return 1
    print(f"\nOK: {len(shared)} shared benchmarks within {args.threshold:.0%}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
