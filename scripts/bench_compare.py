#!/usr/bin/env python3
"""Compare two benchmark JSONL files (BENCH_*.json) emitted by the
criterion shim (CRITERION_JSON=out.json cargo bench).

Each line is {"group", "name", "ns_per_iter", ...}; benchmarks are keyed
by (group, name). Prints a table of ratios and exits 1 if any benchmark
present in both files regressed (new/old - 1) beyond the noise threshold.

Usage:
    bench_compare.py OLD.json NEW.json [--threshold 0.35] [--quiet]
"""

import argparse
import json
import sys


def load(path):
    runs = {}
    with open(path) as f:
        for lineno, line in enumerate(f, 1):
            line = line.strip()
            if not line:
                continue
            try:
                rec = json.loads(line)
                runs[(rec["group"], rec["name"])] = float(rec["ns_per_iter"])
            except (json.JSONDecodeError, KeyError, TypeError, ValueError) as e:
                sys.exit(f"{path}:{lineno}: malformed benchmark record: {e}")
    if not runs:
        sys.exit(f"{path}: no benchmark records")
    return runs


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("old", help="baseline JSONL (e.g. BENCH_PR5.json)")
    ap.add_argument("new", help="candidate JSONL (e.g. BENCH_PR6.json)")
    ap.add_argument(
        "--threshold",
        type=float,
        default=0.35,
        help="relative regression tolerated before failing; the shim "
        "reports fastest-of-few-samples, so single-run noise is large "
        "(default: %(default)s)",
    )
    ap.add_argument("--quiet", action="store_true", help="only print regressions")
    args = ap.parse_args()

    old, new = load(args.old), load(args.new)
    shared = sorted(set(old) & set(new))
    if not shared:
        sys.exit("no benchmarks in common between the two files")

    regressions = []
    width = max(len(f"{g}/{n}") for g, n in shared)
    for key in shared:
        g, n = key
        ratio = new[key] / old[key]
        regressed = ratio > 1.0 + args.threshold
        if regressed:
            regressions.append((key, ratio))
        if not args.quiet or regressed:
            marker = "REGRESSED" if regressed else ("improved" if ratio < 1.0 - args.threshold else "")
            print(
                f"{f'{g}/{n}':{width}}  {old[key]:>14.1f} -> {new[key]:>14.1f} ns"
                f"  ({ratio:6.2f}x)  {marker}"
            )

    only_old = sorted(set(old) - set(new))
    only_new = sorted(set(new) - set(old))
    for g, n in only_old:
        print(f"note: {g}/{n} only in {args.old}")
    for g, n in only_new:
        print(f"note: {g}/{n} only in {args.new}")

    if regressions:
        print(
            f"\n{len(regressions)} regression(s) beyond {args.threshold:.0%} "
            f"over {len(shared)} shared benchmarks"
        )
        return 1
    print(f"\nOK: {len(shared)} shared benchmarks within {args.threshold:.0%}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
