//! Offline shim for the `criterion` crate.
//!
//! Implements the subset this workspace's benches use: `Criterion`,
//! `benchmark_group`, `bench_function`, `Bencher::{iter, iter_batched}`,
//! `Throughput`, `BatchSize`, `black_box`, and the `criterion_group!` /
//! `criterion_main!` macros.
//!
//! Measurement model: per benchmark, one warmup call, then `sample_size`
//! samples of an adaptively-sized inner loop; the reported figure is the
//! fastest sample (least-noise estimator). Results are printed to stdout
//! and, when the `CRITERION_JSON` environment variable names a file, also
//! appended there as JSON lines:
//! `{"group":…,"name":…,"ns_per_iter":…,"throughput_per_s":…}`.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Per-sample time budget; total ≈ `sample_size × TARGET_SAMPLE`.
const TARGET_SAMPLE: Duration = Duration::from_millis(20);

/// Units processed per iteration, for derived throughput reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// How batched inputs are grouped per timing sample.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    /// One setup per timed call (used when the routine consumes its input
    /// and setup is expensive, e.g. spawning a runtime).
    PerIteration,
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            sample_size: 10,
            throughput: None,
        }
    }

    /// Runs a standalone benchmark (implicit anonymous group).
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        let sample_size = self.sample_size;
        run_benchmark("", &id.into(), sample_size, None, f);
        self
    }
}

/// A group of related benchmarks sharing sample-size/throughput settings.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timing samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Declares per-iteration throughput for subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&self.name, &id.into(), self.sample_size, self.throughput, f);
        self
    }

    /// Ends the group (no-op in the shim; kept for API parity).
    pub fn finish(self) {}
}

/// Timing harness handed to each benchmark closure.
pub struct Bencher {
    sample_size: usize,
    /// Best (ns-per-iteration, iters) observed, filled by iter/iter_batched.
    best_ns_per_iter: f64,
}

impl Bencher {
    /// Times `routine` over adaptively-sized inner loops.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        // Warmup + calibration.
        let t0 = Instant::now();
        black_box(routine());
        let once = t0.elapsed().max(Duration::from_nanos(1));
        let per_sample = (TARGET_SAMPLE.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;

        let mut best = f64::INFINITY;
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..per_sample {
                black_box(routine());
            }
            let ns = start.elapsed().as_nanos() as f64 / per_sample as f64;
            best = best.min(ns);
        }
        self.best_ns_per_iter = best;
    }

    /// Times `routine` on fresh inputs from `setup`, excluding setup time.
    pub fn iter_batched<I, R, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> R,
    {
        // Calibrate with one timed call.
        let input = setup();
        let t0 = Instant::now();
        black_box(routine(input));
        let once = t0.elapsed().max(Duration::from_nanos(1));
        // Setup cost is excluded from timing but still paid per call, so
        // bound the per-sample batch harder than in `iter`.
        let per_sample = (TARGET_SAMPLE.as_nanos() / once.as_nanos()).clamp(1, 10_000) as u64;

        let mut best = f64::INFINITY;
        for _ in 0..self.sample_size {
            let mut elapsed = Duration::ZERO;
            for _ in 0..per_sample {
                let input = setup();
                let start = Instant::now();
                black_box(routine(input));
                elapsed += start.elapsed();
            }
            let ns = elapsed.as_nanos() as f64 / per_sample as f64;
            best = best.min(ns);
        }
        self.best_ns_per_iter = best;
    }
}

fn run_benchmark<F>(
    group: &str,
    id: &str,
    sample_size: usize,
    throughput: Option<Throughput>,
    mut f: F,
) where
    F: FnMut(&mut Bencher),
{
    let mut bencher = Bencher {
        sample_size,
        best_ns_per_iter: f64::NAN,
    };
    f(&mut bencher);
    let ns = bencher.best_ns_per_iter;

    let full = if group.is_empty() {
        id.to_string()
    } else {
        format!("{group}/{id}")
    };
    let (rate, unit) = match throughput {
        Some(Throughput::Elements(n)) => (n as f64 / (ns * 1e-9), "elem/s"),
        Some(Throughput::Bytes(n)) => (n as f64 / (ns * 1e-9), "B/s"),
        None => (0.0, ""),
    };
    if unit.is_empty() {
        println!("bench {full:<44} {ns:>14.1} ns/iter");
    } else {
        println!(
            "bench {full:<44} {ns:>14.1} ns/iter  {:>12.3e} {unit}",
            rate
        );
    }

    if let Ok(path) = std::env::var("CRITERION_JSON") {
        if !path.is_empty() {
            use std::io::Write;
            let line = format!(
                "{{\"group\":\"{group}\",\"name\":\"{id}\",\"ns_per_iter\":{ns:.1},\"throughput_per_s\":{rate:.1},\"throughput_unit\":\"{unit}\"}}\n",
            );
            let _ = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(&path)
                .and_then(|mut fh| fh.write_all(line.as_bytes()));
        }
    }
}

/// Declares a benchmark group runner function (criterion API parity).
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_reports_finite_time() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.sample_size(3);
        g.throughput(Throughput::Elements(64));
        g.bench_function("sum", |b| {
            b.iter(|| (0..64u64).sum::<u64>());
        });
        g.finish();
    }

    #[test]
    fn iter_batched_consumes_inputs() {
        let mut c = Criterion::default();
        c.bench_function("drain", |b| {
            b.iter_batched(|| vec![1u8; 32], |v| v.len(), BatchSize::PerIteration);
        });
    }
}
