//! Offline shim for the `parking_lot` crate, backed by `std::sync`.
//!
//! Provides the subset of the parking_lot 0.12 API this workspace uses:
//! a poison-free [`Mutex`] whose `lock` returns the guard directly, and a
//! [`Condvar`] that waits on `&mut MutexGuard` (parking_lot style) rather
//! than consuming the guard (std style).

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::{self, PoisonError};
use std::time::{Duration, Instant};

/// A mutual-exclusion primitive (std-backed, poison-transparent).
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available. Unlike `std`, poisoned
    /// locks are transparently recovered (parking_lot has no poisoning).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let guard = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        MutexGuard {
            guard: Some(guard),
            mutex: &self.inner,
        }
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(MutexGuard {
                guard: Some(guard),
                mutex: &self.inner,
            }),
            Err(sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                guard: Some(p.into_inner()),
                mutex: &self.inner,
            }),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Mutex<T> {
        Mutex::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

/// RAII guard returned by [`Mutex::lock`].
///
/// The inner std guard lives in an `Option` so [`Condvar::wait`] can move
/// it out and back while the caller holds `&mut MutexGuard`.
pub struct MutexGuard<'a, T: ?Sized> {
    guard: Option<sync::MutexGuard<'a, T>>,
    mutex: &'a sync::Mutex<T>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.guard
            .as_ref()
            .expect("guard present outside of condvar wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.guard
            .as_mut()
            .expect("guard present outside of condvar wait")
    }
}

/// Result of a timed condition-variable wait.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// Whether the wait ended by timeout rather than notification.
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// A condition variable with parking_lot's `&mut guard` wait API.
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Condvar {
        Condvar {
            inner: sync::Condvar::new(),
        }
    }

    /// Blocks until notified, releasing the guard's lock while waiting.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.guard.take().expect("guard present");
        let inner = self
            .inner
            .wait(inner)
            .unwrap_or_else(PoisonError::into_inner);
        guard.guard = Some(inner);
        let _ = guard.mutex; // keep the field used in all build configs
    }

    /// Blocks until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let inner = guard.guard.take().expect("guard present");
        let (inner, result) = match self.inner.wait_timeout(inner, timeout) {
            Ok((g, r)) => (g, r),
            Err(p) => p.into_inner(),
        };
        guard.guard = Some(inner);
        WaitTimeoutResult {
            timed_out: result.timed_out(),
        }
    }

    /// Blocks until notified or the deadline `until` passes.
    pub fn wait_until<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        until: Instant,
    ) -> WaitTimeoutResult {
        let timeout = until.saturating_duration_since(Instant::now());
        self.wait_for(guard, timeout)
    }

    /// Wakes one waiting thread.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes all waiting threads.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl Default for Condvar {
    fn default() -> Condvar {
        Condvar::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
    }

    #[test]
    fn condvar_roundtrip() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (lock, cvar) = &*p2;
            let mut started = lock.lock();
            *started = true;
            cvar.notify_one();
        });
        let (lock, cvar) = &*pair;
        let mut started = lock.lock();
        while !*started {
            cvar.wait(&mut started);
        }
        t.join().unwrap();
        assert!(*started);
    }

    #[test]
    fn wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let r = cv.wait_for(&mut g, Duration::from_millis(5));
        assert!(r.timed_out());
    }
}
