//! Offline shim for the `rand` crate.
//!
//! Implements the subset used by this workspace's tests: a seedable
//! [`rngs::StdRng`] (SplitMix64 core — deterministic, not the real
//! StdRng stream, which the tests do not depend on) and
//! [`Rng::gen_range`] over half-open and inclusive integer/float ranges.

use std::ops::{Range, RangeInclusive};

/// Trait for RNGs, mirroring `rand::RngCore`.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Extension methods for RNGs, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range`.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample(self)
    }

    /// Samples a value of type `T` from its full standard distribution.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }
}

impl<G: RngCore + ?Sized> Rng for G {}

/// Trait for seedable RNGs, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Creates an RNG from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable from an RNG's full range (mirrors `rand::distributions::Standard`).
pub trait Standard: Sized {
    fn sample<G: RngCore>(rng: &mut G) -> Self;
}

impl Standard for u64 {
    fn sample<G: RngCore>(rng: &mut G) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<G: RngCore>(rng: &mut G) -> u32 {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample<G: RngCore>(rng: &mut G) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<G: RngCore>(rng: &mut G) -> f64 {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Types uniformly samplable from a bounded range (mirrors
/// `rand::distributions::uniform::SampleUniform`).
pub trait SampleUniform: Sized + Copy + PartialOrd {
    /// Samples uniformly from `[lo, hi)` (`inclusive` ⇒ `[lo, hi]`).
    fn sample_uniform<G: RngCore + ?Sized>(
        lo: Self,
        hi: Self,
        inclusive: bool,
        rng: &mut G,
    ) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<G: RngCore + ?Sized>(
                lo: $t,
                hi: $t,
                inclusive: bool,
                rng: &mut G,
            ) -> $t {
                let span = (hi as i128 - lo as i128) as u128 + inclusive as u128;
                assert!(span > 0, "gen_range: empty range");
                let v = ((rng.next_u64() as u128) % span) as i128;
                (lo as i128 + v) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl SampleUniform for f64 {
    fn sample_uniform<G: RngCore + ?Sized>(lo: f64, hi: f64, _inclusive: bool, rng: &mut G) -> f64 {
        assert!(lo < hi, "gen_range: empty range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        lo + unit * (hi - lo)
    }
}

impl SampleUniform for f32 {
    fn sample_uniform<G: RngCore + ?Sized>(lo: f32, hi: f32, _inclusive: bool, rng: &mut G) -> f32 {
        assert!(lo < hi, "gen_range: empty range");
        let unit = (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32);
        lo + unit * (hi - lo)
    }
}

/// Ranges a value can be uniformly sampled from (mirrors
/// `rand::distributions::uniform::SampleRange`).
///
/// Implemented as two blanket impls over [`SampleUniform`] — matching the
/// real crate's structure so integer-literal type inference behaves the
/// same (`start + rng.gen_range(1..10)` unifies with `start`'s type).
pub trait SampleRange<T> {
    fn sample<G: RngCore + ?Sized>(self, rng: &mut G) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample<G: RngCore + ?Sized>(self, rng: &mut G) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        T::sample_uniform(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample<G: RngCore + ?Sized>(self, rng: &mut G) -> T {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range: empty range");
        T::sample_uniform(lo, hi, true, rng)
    }
}

/// RNG implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A deterministic 64-bit PRNG (SplitMix64). Stands in for rand's
    /// `StdRng`; the stream differs from upstream, which is fine for the
    /// seeded stress tests in this workspace.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            StdRng { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_stream_is_deterministic() {
        let mut a = rngs::StdRng::seed_from_u64(7);
        let mut b = rngs::StdRng::seed_from_u64(7);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = rngs::StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let v: i32 = rng.gen_range(1..3);
            assert!((1..3).contains(&v));
            let u: usize = rng.gen_range(0..20);
            assert!(u < 20);
            let f: f64 = rng.gen_range(0.0..1.0);
            assert!((0.0..1.0).contains(&f));
            let i: u8 = rng.gen_range(0..=4);
            assert!(i <= 4);
        }
    }

    #[test]
    fn gen_range_covers_full_span() {
        let mut rng = rngs::StdRng::seed_from_u64(3);
        let mut seen = [false; 3];
        for _ in 0..100 {
            seen[rng.gen_range(0usize..3)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
