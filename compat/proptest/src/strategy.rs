//! Core strategy trait and combinators.

use crate::test_runner::TestRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// A generator of random values of type `Value`.
///
/// Unlike real proptest there is no value tree / shrinking: a strategy
/// simply produces a value from an RNG.
pub trait Strategy {
    type Value: std::fmt::Debug;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f` (mirrors `Strategy::prop_map`).
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        O: std::fmt::Debug,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, f }
    }

    /// Type-erases the strategy (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone + std::fmt::Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Strategy produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    O: std::fmt::Debug,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.generate(rng))
    }
}

/// Uniform choice among type-erased strategies (the `prop_oneof!` backend).
pub struct Union<V> {
    arms: Vec<BoxedStrategy<V>>,
}

impl<V: std::fmt::Debug> Union<V> {
    pub fn new(arms: Vec<BoxedStrategy<V>>) -> Union<V> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<V: std::fmt::Debug> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let i = rng.gen_range(0..self.arms.len());
        self.arms[i].generate(rng)
    }
}

impl<T> Strategy for Range<T>
where
    T: rand::SampleUniform + std::fmt::Debug,
{
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        rng.gen_range(self.clone())
    }
}

impl<T> Strategy for RangeInclusive<T>
where
    T: rand::SampleUniform + std::fmt::Debug,
{
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        rng.gen_range(self.clone())
    }
}

macro_rules! impl_tuple_strategy {
    ($($s:ident),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($s,)+) = self;
                ($($s.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J);
