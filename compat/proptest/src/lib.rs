//! Offline shim for the `proptest` crate.
//!
//! Implements the subset of proptest 1.x used by this workspace:
//! the [`proptest!`] test macro, `prop_assert!`/`prop_assert_eq!`,
//! `prop_oneof!`, [`strategy::Just`], [`arbitrary::any`], range and tuple
//! strategies, `prop_map`, and `prop::collection::{vec, btree_set}`.
//!
//! Semantics: each test runs `ProptestConfig::cases` randomized cases with
//! a deterministic per-test seed (derived from the test's module path), so
//! failures reproduce across runs. There is **no shrinking** — a failing
//! case reports its inputs' case number only.

pub mod strategy;

pub mod arbitrary {
    //! The `any::<T>()` entry point for standard-distribution strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::{Rng, RngCore};
    use std::marker::PhantomData;

    /// Types with a canonical "arbitrary value" strategy.
    pub trait Arbitrary: Sized + std::fmt::Debug {
        fn arbitrary_value(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_uint {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary_value(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_arbitrary_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary_value(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary_value(rng: &mut TestRng) -> f64 {
            // Finite values spanning a wide magnitude range.
            let mag: f64 = rng.gen_range(-300.0..300.0);
            let sign = if rng.next_u64() & 1 == 1 { -1.0 } else { 1.0 };
            sign * 10f64.powf(mag / 10.0)
        }
    }

    /// Strategy produced by [`any`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary_value(rng)
        }
    }

    /// Returns a strategy generating arbitrary values of `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    //! Collection strategies: `vec` and `btree_set`.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::collections::BTreeSet;
    use std::ops::Range;

    /// A size specification for collection strategies.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            SizeRange {
                lo: r.start,
                hi_exclusive: r.end,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange {
                lo: n,
                hi_exclusive: n + 1,
            }
        }
    }

    impl SizeRange {
        fn pick(&self, rng: &mut TestRng) -> usize {
            if self.lo + 1 >= self.hi_exclusive {
                self.lo
            } else {
                rng.gen_range(self.lo..self.hi_exclusive)
            }
        }
    }

    /// Strategy for `Vec<S::Value>` of a size drawn from `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Generates vectors whose elements come from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy for `BTreeSet<S::Value>` of a size drawn from `size`.
    #[derive(Debug, Clone)]
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let target = self.size.pick(rng);
            let mut out = BTreeSet::new();
            // Duplicates shrink the set, so cap the attempts (proptest
            // rejects instead; for these tests best-effort sizing is fine).
            for _ in 0..target.saturating_mul(10).max(8) {
                if out.len() >= target {
                    break;
                }
                out.insert(self.element.generate(rng));
            }
            out
        }
    }

    /// Generates ordered sets whose elements come from `element`.
    pub fn btree_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod test_runner {
    //! Test configuration, deterministic RNG, and case errors.

    pub use rand::rngs::StdRng as TestRngImpl;
    use rand::{RngCore, SeedableRng};

    /// Deterministic RNG used to generate test cases.
    #[derive(Debug, Clone)]
    pub struct TestRng(TestRngImpl);

    impl TestRng {
        /// Seeds the RNG from a test identifier and case index so every
        /// run of the suite generates the same cases.
        pub fn deterministic(test_name: &str, case: u32) -> TestRng {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in test_name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng(TestRngImpl::seed_from_u64(
                h ^ ((case as u64) << 32 | case as u64),
            ))
        }
    }

    impl RngCore for TestRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }

    /// Runner configuration; only `cases` is honoured by the shim.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A configuration running `cases` randomized cases per test.
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig { cases: 64 }
        }
    }

    /// Error raised by `prop_assert!`-style macros inside a test case.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// The property was falsified.
        Fail(String),
    }

    impl TestCaseError {
        pub fn fail(msg: impl Into<String>) -> TestCaseError {
            TestCaseError::Fail(msg.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TestCaseError::Fail(msg) => write!(f, "{msg}"),
            }
        }
    }
}

/// `prop::…` paths used by the prelude (`prop::collection::vec`, …).
pub mod prop {
    pub use crate::collection;
    pub use crate::strategy;
}

pub mod prelude {
    //! Glob-import surface matching `proptest::prelude::*`.

    pub use crate::arbitrary::any;
    pub use crate::prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

/// Defines `#[test]` functions whose arguments are drawn from strategies.
///
/// Supports the standard form:
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(16))]
///     #[test]
///     fn my_prop(x in 0usize..10, flag in any::<bool>()) { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($cfg) $($rest)*);
    };
    (@impl ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let test_id = concat!(module_path!(), "::", stringify!($name));
                for case in 0..config.cases {
                    let mut rng = $crate::test_runner::TestRng::deterministic(test_id, case);
                    $(let $arg = $crate::strategy::Strategy::generate(&$strat, &mut rng);)+
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(e) = outcome {
                        panic!("proptest {} failed at case {}/{}: {}", test_id, case, config.cases, e);
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

/// Asserts a condition inside a `proptest!` body, failing the case (not
/// panicking directly) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)));
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "{}\n  left: {:?}\n right: {:?}",
            format!($($fmt)+), l, r
        );
    }};
}

/// Chooses uniformly among several strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_tuples(
            (a, b) in (0usize..5, 1u8..=4),
            x in -1.0f64..1.0,
            flag in any::<bool>(),
        ) {
            prop_assert!(a < 5);
            prop_assert!((1..=4).contains(&b));
            prop_assert!((-1.0..1.0).contains(&x));
            let _ = flag;
        }

        #[test]
        fn mapped_and_collections(
            v in prop::collection::vec((0u8..4).prop_map(|x| x as usize * 2), 1..4),
            s in prop::collection::btree_set(0usize..100, 2..5),
        ) {
            prop_assert!(!v.is_empty() && v.len() < 4);
            prop_assert!(v.iter().all(|&e| e % 2 == 0));
            prop_assert!(s.len() >= 2 || s.len() < 5);
        }

        #[test]
        fn oneof_heterogeneous(
            v in prop_oneof![Just(7usize), (0usize..3).prop_map(|x| x + 100)],
        ) {
            prop_assert!(v == 7 || (100..103).contains(&v));
        }
    }

    #[test]
    fn cases_are_deterministic() {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        let s = (0u64..1_000_000, 0.0f64..1.0);
        let a = s.generate(&mut TestRng::deterministic("t", 3));
        let b = s.generate(&mut TestRng::deterministic("t", 3));
        assert_eq!(a, b);
    }
}
