//! Offline shim for the `smallvec` crate: a growable vector that stores
//! up to `N` elements inline (no heap allocation) and spills to a `Vec`
//! beyond that. Only the subset the workspace uses is provided:
//! `SmallVec<[T; N]>` with `new`, `push`, `extend`, slice deref, owned
//! iteration, `From<Vec<T>>` and `into_vec`.
//!
//! `From<Vec<T>>` is deliberately zero-copy (the vector is adopted as
//! the heap representation even when it would fit inline): the hot
//! spawn path hands over already-built vectors and must not pay a move.

use std::fmt;
use std::mem::{ManuallyDrop, MaybeUninit};
use std::ops::{Deref, DerefMut};
use std::ptr;

/// Marker trait tying `SmallVec<[T; N]>` syntax to its inline capacity.
///
/// # Safety
///
/// Implementations must be plain arrays: `Item` is the element type and
/// `CAP` the array length, so that `MaybeUninit<Self>` is valid backing
/// storage for `CAP` elements.
pub unsafe trait Array {
    /// Element type.
    type Item;
    /// Inline capacity.
    const CAP: usize;
}

unsafe impl<T, const N: usize> Array for [T; N] {
    type Item = T;
    const CAP: usize = N;
}

enum Data<A: Array> {
    Inline { len: usize, buf: MaybeUninit<A> },
    Heap(Vec<A::Item>),
}

/// A `Vec`-like container with inline storage for small lengths.
pub struct SmallVec<A: Array> {
    data: Data<A>,
}

impl<A: Array> SmallVec<A> {
    /// Creates an empty vector (no allocation).
    #[inline]
    pub fn new() -> SmallVec<A> {
        SmallVec {
            data: Data::Inline {
                len: 0,
                buf: MaybeUninit::uninit(),
            },
        }
    }

    /// Number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        match &self.data {
            Data::Inline { len, .. } => *len,
            Data::Heap(v) => v.len(),
        }
    }

    /// Whether the vector is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether the elements still live in the inline buffer.
    #[inline]
    pub fn spilled(&self) -> bool {
        matches!(self.data, Data::Heap(_))
    }

    /// Appends an element, spilling to the heap past the inline capacity.
    pub fn push(&mut self, value: A::Item) {
        match &mut self.data {
            Data::Inline { len, buf } => {
                if *len < A::CAP {
                    unsafe {
                        (buf.as_mut_ptr() as *mut A::Item).add(*len).write(value);
                    }
                    *len += 1;
                } else {
                    let mut vec = Vec::with_capacity((A::CAP * 2).max(4));
                    unsafe {
                        let src = buf.as_ptr() as *const A::Item;
                        for i in 0..*len {
                            vec.push(ptr::read(src.add(i)));
                        }
                        // The inline elements were moved out; forget them.
                        *len = 0;
                    }
                    vec.push(value);
                    self.data = Data::Heap(vec);
                }
            }
            Data::Heap(v) => v.push(value),
        }
    }

    /// View as a slice.
    #[inline]
    pub fn as_slice(&self) -> &[A::Item] {
        match &self.data {
            Data::Inline { len, buf } => unsafe {
                std::slice::from_raw_parts(buf.as_ptr() as *const A::Item, *len)
            },
            Data::Heap(v) => v.as_slice(),
        }
    }

    /// View as a mutable slice.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [A::Item] {
        match &mut self.data {
            Data::Inline { len, buf } => unsafe {
                std::slice::from_raw_parts_mut(buf.as_mut_ptr() as *mut A::Item, *len)
            },
            Data::Heap(v) => v.as_mut_slice(),
        }
    }

    /// Converts into a plain `Vec`.
    pub fn into_vec(self) -> Vec<A::Item> {
        match self.take_data() {
            Data::Inline { len, buf } => unsafe {
                let mut vec = Vec::with_capacity(len);
                let src = buf.as_ptr() as *const A::Item;
                for i in 0..len {
                    vec.push(ptr::read(src.add(i)));
                }
                vec
            },
            Data::Heap(v) => v,
        }
    }

    /// Moves the representation out without running `Drop`.
    #[inline]
    fn take_data(self) -> Data<A> {
        let this = ManuallyDrop::new(self);
        unsafe { ptr::read(&this.data) }
    }
}

impl<A: Array> Default for SmallVec<A> {
    #[inline]
    fn default() -> Self {
        SmallVec::new()
    }
}

impl<A: Array> Drop for SmallVec<A> {
    fn drop(&mut self) {
        if let Data::Inline { len, buf } = &mut self.data {
            unsafe {
                ptr::drop_in_place(std::ptr::slice_from_raw_parts_mut(
                    buf.as_mut_ptr() as *mut A::Item,
                    *len,
                ));
            }
        }
    }
}

impl<A: Array> Deref for SmallVec<A> {
    type Target = [A::Item];
    #[inline]
    fn deref(&self) -> &[A::Item] {
        self.as_slice()
    }
}

impl<A: Array> DerefMut for SmallVec<A> {
    #[inline]
    fn deref_mut(&mut self) -> &mut [A::Item] {
        self.as_mut_slice()
    }
}

impl<A: Array> From<Vec<A::Item>> for SmallVec<A> {
    #[inline]
    fn from(vec: Vec<A::Item>) -> Self {
        SmallVec {
            data: Data::Heap(vec),
        }
    }
}

impl<A: Array> Extend<A::Item> for SmallVec<A> {
    fn extend<I: IntoIterator<Item = A::Item>>(&mut self, iter: I) {
        for item in iter {
            self.push(item);
        }
    }
}

impl<A: Array> FromIterator<A::Item> for SmallVec<A> {
    fn from_iter<I: IntoIterator<Item = A::Item>>(iter: I) -> Self {
        let mut sv = SmallVec::new();
        sv.extend(iter);
        sv
    }
}

impl<A: Array> Clone for SmallVec<A>
where
    A::Item: Clone,
{
    fn clone(&self) -> Self {
        self.iter().cloned().collect()
    }
}

impl<A: Array> fmt::Debug for SmallVec<A>
where
    A::Item: fmt::Debug,
{
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self.as_slice(), f)
    }
}

impl<A: Array> PartialEq for SmallVec<A>
where
    A::Item: PartialEq,
{
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

/// Owned iterator over a [`SmallVec`].
pub enum IntoIter<A: Array> {
    #[doc(hidden)]
    Inline {
        buf: MaybeUninit<A>,
        len: usize,
        start: usize,
    },
    #[doc(hidden)]
    Heap(std::vec::IntoIter<A::Item>),
}

impl<A: Array> Iterator for IntoIter<A> {
    type Item = A::Item;

    fn next(&mut self) -> Option<A::Item> {
        match self {
            IntoIter::Inline { buf, len, start } => {
                if start < len {
                    let item = unsafe { ptr::read((buf.as_ptr() as *const A::Item).add(*start)) };
                    *start += 1;
                    Some(item)
                } else {
                    None
                }
            }
            IntoIter::Heap(it) => it.next(),
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = match self {
            IntoIter::Inline { len, start, .. } => *len - *start,
            IntoIter::Heap(it) => return it.size_hint(),
        };
        (n, Some(n))
    }
}

impl<A: Array> ExactSizeIterator for IntoIter<A> {}

impl<A: Array> Drop for IntoIter<A> {
    fn drop(&mut self) {
        if let IntoIter::Inline { buf, len, start } = self {
            unsafe {
                for i in *start..*len {
                    ptr::drop_in_place((buf.as_mut_ptr() as *mut A::Item).add(i));
                }
            }
        }
    }
}

impl<A: Array> IntoIterator for SmallVec<A> {
    type Item = A::Item;
    type IntoIter = IntoIter<A>;

    fn into_iter(self) -> IntoIter<A> {
        match self.take_data() {
            Data::Inline { len, buf } => IntoIter::Inline { buf, len, start: 0 },
            Data::Heap(v) => IntoIter::Heap(v.into_iter()),
        }
    }
}

impl<'a, A: Array> IntoIterator for &'a SmallVec<A> {
    type Item = &'a A::Item;
    type IntoIter = std::slice::Iter<'a, A::Item>;

    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn inline_then_spill() {
        let mut sv: SmallVec<[u32; 4]> = SmallVec::new();
        assert!(sv.is_empty());
        for i in 0..4 {
            sv.push(i);
        }
        assert!(!sv.spilled());
        sv.push(4);
        assert!(sv.spilled());
        assert_eq!(&sv[..], &[0, 1, 2, 3, 4]);
    }

    #[test]
    fn from_vec_is_heap() {
        let sv: SmallVec<[u32; 8]> = vec![1, 2].into();
        assert!(sv.spilled());
        assert_eq!(sv.into_vec(), vec![1, 2]);
    }

    #[test]
    fn owned_iteration_inline_and_heap() {
        let sv: SmallVec<[String; 4]> = ["a", "b"].into_iter().map(String::from).collect();
        assert!(!sv.spilled());
        assert_eq!(sv.into_iter().collect::<Vec<_>>(), vec!["a", "b"]);
        let sv: SmallVec<[String; 1]> = ["a", "b"].into_iter().map(String::from).collect();
        assert!(sv.spilled());
        assert_eq!(sv.into_iter().collect::<Vec<_>>(), vec!["a", "b"]);
    }

    #[test]
    fn drops_run_exactly_once() {
        struct Probe(Arc<AtomicUsize>);
        impl Drop for Probe {
            fn drop(&mut self) {
                self.0.fetch_add(1, Ordering::SeqCst);
            }
        }
        let drops = Arc::new(AtomicUsize::new(0));
        // Dropped while inline.
        let mut sv: SmallVec<[Probe; 4]> = SmallVec::new();
        sv.push(Probe(Arc::clone(&drops)));
        sv.push(Probe(Arc::clone(&drops)));
        drop(sv);
        assert_eq!(drops.load(Ordering::SeqCst), 2);
        // Spilled, then a partially-consumed owned iterator.
        drops.store(0, Ordering::SeqCst);
        let mut sv: SmallVec<[Probe; 1]> = SmallVec::new();
        for _ in 0..3 {
            sv.push(Probe(Arc::clone(&drops)));
        }
        let mut it = sv.into_iter();
        drop(it.next());
        drop(it);
        assert_eq!(drops.load(Ordering::SeqCst), 3);
        // Partially-consumed inline iterator drops the tail.
        drops.store(0, Ordering::SeqCst);
        let mut sv: SmallVec<[Probe; 4]> = SmallVec::new();
        for _ in 0..3 {
            sv.push(Probe(Arc::clone(&drops)));
        }
        let mut it = sv.into_iter();
        drop(it.next());
        drop(it);
        assert_eq!(drops.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn clone_copies_elements() {
        let mut sv: SmallVec<[u8; 2]> = SmallVec::new();
        sv.extend([1, 2, 3]);
        let dup = sv.clone();
        assert_eq!(sv, dup);
    }
}
