//! Offline shim for `crossbeam-deque`, backed by `Mutex<VecDeque>`.
//!
//! Semantics match the subset the task scheduler uses: a LIFO [`Worker`]
//! owned by one thread, [`Stealer`] handles that take from the opposite
//! end, and a shared FIFO [`Injector`]. The lock-based implementation is
//! slower than the real lock-free deque but behaviourally equivalent.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex, PoisonError};

/// Outcome of a steal attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Steal<T> {
    /// The source was observed empty.
    Empty,
    /// A task was stolen.
    Success(T),
    /// The attempt lost a race and may be retried.
    Retry,
}

impl<T> Steal<T> {
    /// Returns the stolen task, if any.
    pub fn success(self) -> Option<T> {
        match self {
            Steal::Success(task) => Some(task),
            _ => None,
        }
    }

    /// Whether the source was observed empty.
    pub fn is_empty(&self) -> bool {
        matches!(self, Steal::Empty)
    }

    /// Whether the attempt should be retried.
    pub fn is_retry(&self) -> bool {
        matches!(self, Steal::Retry)
    }

    /// Whether a task was stolen.
    pub fn is_success(&self) -> bool {
        matches!(self, Steal::Success(_))
    }
}

fn lock<T>(m: &Mutex<VecDeque<T>>) -> std::sync::MutexGuard<'_, VecDeque<T>> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// A worker-local deque. The owner pushes and pops at the back (LIFO);
/// stealers take from the front.
pub struct Worker<T> {
    queue: Arc<Mutex<VecDeque<T>>>,
}

impl<T> Worker<T> {
    /// Creates a LIFO worker queue.
    pub fn new_lifo() -> Worker<T> {
        Worker {
            queue: Arc::new(Mutex::new(VecDeque::new())),
        }
    }

    /// Creates a FIFO worker queue. With the mutex-backed deque, FIFO is
    /// modelled the same way; only the owner's pop end differs, which the
    /// scheduler does not rely on.
    pub fn new_fifo() -> Worker<T> {
        Worker::new_lifo()
    }

    /// Pushes a task onto the owner's end.
    pub fn push(&self, task: T) {
        lock(&self.queue).push_back(task);
    }

    /// Pops a task from the owner's end (most recently pushed).
    pub fn pop(&self) -> Option<T> {
        lock(&self.queue).pop_back()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        lock(&self.queue).is_empty()
    }

    /// Number of tasks currently queued.
    pub fn len(&self) -> usize {
        lock(&self.queue).len()
    }

    /// Creates a stealer handle sharing this queue.
    pub fn stealer(&self) -> Stealer<T> {
        Stealer {
            queue: Arc::clone(&self.queue),
        }
    }
}

/// A handle for stealing tasks from a [`Worker`]'s queue.
pub struct Stealer<T> {
    queue: Arc<Mutex<VecDeque<T>>>,
}

impl<T> Stealer<T> {
    /// Steals the oldest task from the worker's queue.
    pub fn steal(&self) -> Steal<T> {
        match lock(&self.queue).pop_front() {
            Some(task) => Steal::Success(task),
            None => Steal::Empty,
        }
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        lock(&self.queue).is_empty()
    }

    /// Number of tasks currently queued.
    pub fn len(&self) -> usize {
        lock(&self.queue).len()
    }
}

impl<T> Clone for Stealer<T> {
    fn clone(&self) -> Stealer<T> {
        Stealer {
            queue: Arc::clone(&self.queue),
        }
    }
}

/// A shared FIFO queue that any thread can push to or steal from.
pub struct Injector<T> {
    queue: Mutex<VecDeque<T>>,
}

impl<T> Injector<T> {
    /// Creates an empty injector.
    pub fn new() -> Injector<T> {
        Injector {
            queue: Mutex::new(VecDeque::new()),
        }
    }

    /// Pushes a task onto the back of the queue.
    pub fn push(&self, task: T) {
        lock(&self.queue).push_back(task);
    }

    /// Steals the oldest task from the queue.
    pub fn steal(&self) -> Steal<T> {
        match lock(&self.queue).pop_front() {
            Some(task) => Steal::Success(task),
            None => Steal::Empty,
        }
    }

    /// Steals a batch of tasks, moving the surplus into `dest` and
    /// returning the first one.
    pub fn steal_batch_and_pop(&self, dest: &Worker<T>) -> Steal<T> {
        let mut q = lock(&self.queue);
        let Some(first) = q.pop_front() else {
            return Steal::Empty;
        };
        // Move up to half of the remainder (crossbeam's batch heuristic).
        let extra = q.len() / 2;
        if extra > 0 {
            let mut dst = lock(&dest.queue);
            for _ in 0..extra {
                if let Some(task) = q.pop_front() {
                    dst.push_back(task);
                }
            }
        }
        Steal::Success(first)
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        lock(&self.queue).is_empty()
    }

    /// Number of tasks currently queued.
    pub fn len(&self) -> usize {
        lock(&self.queue).len()
    }
}

impl<T> Default for Injector<T> {
    fn default() -> Injector<T> {
        Injector::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn worker_is_lifo_stealer_is_fifo() {
        let w = Worker::new_lifo();
        w.push(1);
        w.push(2);
        w.push(3);
        assert_eq!(w.pop(), Some(3));
        let s = w.stealer();
        assert_eq!(s.steal(), Steal::Success(1));
        assert_eq!(w.pop(), Some(2));
        assert_eq!(w.pop(), None);
        assert!(s.steal().is_empty());
    }

    #[test]
    fn injector_batch_pop() {
        let inj = Injector::new();
        for i in 0..6 {
            inj.push(i);
        }
        let w = Worker::new_lifo();
        assert_eq!(inj.steal_batch_and_pop(&w), Steal::Success(0));
        // Half of the remaining five (two tasks) moved into the worker.
        assert_eq!(w.len(), 2);
        assert_eq!(inj.len(), 3);
    }
}
