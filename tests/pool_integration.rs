//! End-to-end behavior of the per-rank `BufferPool` under full variant
//! runs: buffers are recycled (high hit rates once warm) and pooling
//! never perturbs the numerics (bitwise-equal cross-variant checksums).

use miniamr::{Config, Variant};
use vmpi::NetworkModel;

fn cfg(tsteps: usize) -> Config {
    let mut cfg = Config::smoke_test();
    cfg.num_tsteps = tsteps;
    cfg.stages_per_ts = 3;
    cfg.checksum_freq = 3;
    cfg.refine_freq = 2;
    cfg.workers = 2;
    cfg
}

#[test]
fn variant_runs_reach_high_pool_hit_rates() {
    for variant in [Variant::MpiOnly, Variant::ForkJoin, Variant::DataFlow] {
        let mut c = cfg(6);
        c.variant = variant;
        let stats = miniamr::run_world(&c, c.params.num_ranks(), NetworkModel::instant());
        for s in &stats {
            let p = s.pool;
            assert!(p.hits + p.misses > 0, "{variant:?}: pool never used");
            assert!(
                p.hit_rate() > 0.8,
                "{variant:?} rank {}: pool hit rate {:.3} too low ({:?})",
                s.rank,
                p.hit_rate(),
                p
            );
        }
    }
}

#[test]
fn variants_agree_bitwise_with_pooling() {
    // Cross-variant checksum equality with the buffer pool active on
    // every payload path.
    let base = cfg(4);
    let mut histories = Vec::new();
    for variant in [Variant::MpiOnly, Variant::ForkJoin, Variant::DataFlow] {
        let mut c = base.clone();
        c.variant = variant;
        let stats = miniamr::run_world(&c, c.params.num_ranks(), NetworkModel::instant());
        assert!(stats.iter().all(|s| s.checksums_failed == 0));
        histories.push(stats[0].checksums.clone());
    }
    assert!(!histories[0].is_empty());
    assert_eq!(
        histories[0], histories[1],
        "fork-join diverged under pooling"
    );
    assert_eq!(
        histories[0], histories[2],
        "data-flow diverged under pooling"
    );
}
