//! Chaos soak: the headline reliability guarantee, end to end.
//!
//! For any seeded fault plan whose losses stay within the retry budget,
//! every variant must produce **bitwise-identical checksum digests** to
//! its fault-free run — the reliability layer (CRC framing, ack/
//! retransmit, duplicate suppression) absorbs drops, duplicates,
//! corruption and delay spikes without perturbing the numerics, and
//! periodic checkpoints ride along without touching cell data.

use miniamr::{Config, Variant};
use std::time::Duration;
use vmpi::{ChaosConfig, NetworkModel, PeerLostAction};

fn soak_cfg() -> Config {
    let mut cfg = Config::smoke_test();
    cfg.num_tsteps = 3;
    cfg.stages_per_ts = 3;
    cfg.checksum_freq = 3;
    cfg.refine_freq = 2;
    cfg.workers = 2;
    cfg
}

/// A survivable fault plan: lossy enough to force retransmission and
/// reordering machinery through its paces, budgeted so no peer is ever
/// declared lost.
fn survivable_plan(seed: u64) -> ChaosConfig {
    ChaosConfig {
        seed,
        drop_p: 0.08,
        dup_p: 0.05,
        corrupt_p: 0.05,
        delay_p: 0.2,
        retry_budget: 20,
        rto: Duration::from_millis(2),
        // If the budget were ever exhausted the run should fail loudly in
        // the harness rather than kill the test process.
        on_peer_lost: PeerLostAction::FailRequests,
        ..ChaosConfig::default()
    }
}

fn digest_of(cfg: &Config, variant: Variant) -> u64 {
    let mut cfg = cfg.clone();
    cfg.variant = variant;
    let net = NetworkModel::new(Duration::from_micros(50), 1.0e9);
    let stats = miniamr::run_world(&cfg, cfg.params.num_ranks(), net);
    for s in &stats {
        assert_eq!(
            s.checksums_failed, 0,
            "variant {variant:?} failed validation"
        );
    }
    // Checksums are broadcast: every rank must agree on the digest.
    for s in &stats[1..] {
        assert_eq!(
            s.checksum_digest(),
            stats[0].checksum_digest(),
            "ranks disagree"
        );
    }
    if cfg.ckpt_freq != 0 {
        assert!(
            stats[0].checkpoints_taken > 0,
            "checkpoint cadence never fired"
        );
    }
    stats[0].checksum_digest()
}

#[test]
fn chaos_digests_match_fault_free_across_variants_and_seeds() {
    let base = soak_cfg();
    for variant in [Variant::MpiOnly, Variant::ForkJoin, Variant::DataFlow] {
        let reference = digest_of(&base, variant);
        for seed in [11, 42, 1337] {
            let mut cfg = base.clone();
            cfg.chaos = Some(survivable_plan(seed));
            cfg.ckpt_freq = 4;
            let got = digest_of(&cfg, variant);
            assert_eq!(
                got, reference,
                "variant {variant:?} seed {seed}: chaos run diverged from fault-free digest"
            );
        }
    }
}

#[test]
fn checkpoint_cadence_is_invisible_to_results() {
    // Checkpoints are pure reads; any frequency must leave the digest
    // untouched even without faults.
    let base = soak_cfg();
    let reference = digest_of(&base, Variant::DataFlow);
    for freq in [1, 5] {
        let mut cfg = base.clone();
        cfg.ckpt_freq = freq;
        assert_eq!(
            digest_of(&cfg, Variant::DataFlow),
            reference,
            "ckpt_freq {freq} changed results"
        );
    }
}
