//! Agreement between the static verifier (`dfcheck`) and the dynamic
//! sanitizer (`depsan`).
//!
//! The static check elaborates the scenario symbolically and proves
//! ordering properties over the *modeled* task/message structure; depsan
//! watches the *actual* run. The two look at the same protocol from
//! opposite ends, so on scenarios the static model covers faithfully:
//!
//! * **dfcheck-clean ⇒ depsan-clean** — a scenario that passes the
//!   static check must run without a single dynamic violation;
//! * the seed's known `--legacy_group_offsets` bug must be flagged
//!   *statically*, as a tag collision naming both aliased sends, without
//!   ever spawning a worker or delivery thread.

use miniamr::{Config, Variant};
use rand::{rngs::StdRng, Rng, SeedableRng};
use vmpi::NetworkModel;

/// A random small scenario: every knob that shapes the task/message
/// structure is sampled, sizes kept small enough that the dynamic run
/// stays in test-time budget.
fn random_cfg(rng: &mut StdRng) -> Config {
    let mut cfg = Config::smoke_test();
    cfg.variant = [Variant::MpiOnly, Variant::ForkJoin, Variant::DataFlow][rng.gen_range(0..3)];
    cfg.params.npx = rng.gen_range(1..=2);
    cfg.params.npy = rng.gen_range(1..=2);
    cfg.params.nx = [4, 6][rng.gen_range(0..2)];
    cfg.params.ny = cfg.params.nx;
    cfg.params.nz = cfg.params.nx;
    cfg.params.num_vars = [2, 4, 8][rng.gen_range(0..3)];
    cfg.num_tsteps = rng.gen_range(2..=3);
    cfg.stages_per_ts = rng.gen_range(3..=6);
    cfg.checksum_freq = rng.gen_range(2..=3);
    cfg.refine_freq = 2;
    cfg.comm_vars = if rng.gen_range(0..2) == 0 {
        usize::MAX
    } else {
        rng.gen_range(1..=cfg.params.num_vars)
    };
    cfg.send_faces = rng.gen_range(0..2) == 0;
    cfg.separate_buffers = rng.gen_range(0..2) == 0;
    cfg.max_comm_tasks = [0, 2][rng.gen_range(0..2)];
    cfg.delayed_checksum = cfg.variant == Variant::DataFlow && rng.gen_range(0..2) == 0;
    cfg.workers = 2;
    cfg
}

#[test]
fn dfcheck_clean_implies_depsan_clean() {
    let mut rng = StdRng::seed_from_u64(0x5ca1ab1e);
    let mut checked = 0;
    for case in 0..8 {
        let cfg = random_cfg(&mut rng);
        let report = miniamr::staticcheck::check(&cfg);
        assert!(
            report.clean(),
            "case {case}: static check flagged a stock scenario ({:?}): {}",
            cfg.variant,
            report.render_human()
        );
        // Dynamic side: the same scenario must run without a violation.
        depsan::enable(depsan::Mode::Record);
        let _ = depsan::take_violations();
        let stats = miniamr::run_world(&cfg, cfg.params.num_ranks(), NetworkModel::instant());
        let violations = depsan::take_violations();
        assert!(
            violations.is_empty(),
            "case {case}: dfcheck-clean scenario ({:?}) produced {} depsan violation(s): {:?}",
            cfg.variant,
            violations.len(),
            violations.first()
        );
        assert_eq!(stats.iter().map(|s| s.checksums_failed).sum::<usize>(), 0);
        checked += 1;
    }
    assert_eq!(checked, 8);
}

fn legacy_cfg() -> Config {
    let mut cfg = Config::smoke_test();
    cfg.variant = Variant::DataFlow;
    cfg.params.nx = 6;
    cfg.params.ny = 6;
    cfg.params.nz = 6;
    cfg.params.num_vars = 8;
    cfg.num_tsteps = 3;
    cfg.comm_vars = 3; // uneven groups: 3 + 3 + 2
    cfg.send_faces = true;
    cfg.legacy_group_offsets = true;
    cfg
}

#[test]
fn legacy_offsets_flagged_statically_naming_both_sends() {
    let report = miniamr::staticcheck::check(&legacy_cfg());
    assert!(
        !report.clean(),
        "the seed's aliasing bug must fail statically"
    );
    let collision = report
        .errors
        .iter()
        .find(|f| {
            f.code == "tag-collision" && f.sites.iter().filter(|s| s.label == "send").count() >= 2
        })
        .expect("a tag-collision finding naming at least two send sites");
    // The two unordered sends share the tag they would collide on and
    // live on the same rank (the static pairing also names the receives).
    let sends: Vec<_> = collision
        .sites
        .iter()
        .filter(|s| s.label == "send")
        .collect();
    assert_eq!(sends[0].tag, sends[1].tag);
    assert_eq!(sends[0].rank, sends[1].rank);

    // Same scenario without the flag is clean on all three variants.
    for variant in [Variant::MpiOnly, Variant::ForkJoin, Variant::DataFlow] {
        let mut cfg = legacy_cfg();
        cfg.legacy_group_offsets = false;
        cfg.variant = variant;
        let report = miniamr::staticcheck::check(&cfg);
        assert!(
            report.clean(),
            "{variant:?} with correct offsets must pass: {}",
            report.render_human()
        );
    }
}
