//! Application-level scenarios beyond the basic equivalence matrix:
//! deeper meshes, Z-direction rank grids, the 27-point stencil, tight
//! block budgets, multi-level refinement, trace capture, and the false
//! dependency that `--separate_buffers` removes.

use amr_mesh::MeshParams;
use miniamr::{Config, Variant};
use vmpi::NetworkModel;

fn run(cfg: &Config, net: NetworkModel) -> Vec<miniamr::RunStats> {
    let stats = miniamr::run_world(cfg, cfg.params.num_ranks(), net);
    for s in &stats {
        assert_eq!(s.checksums_failed, 0, "validation failed");
    }
    stats
}

/// Four ranks arranged along Z — exercises the Z-direction communication
/// plan, which the default X-split smoke config never does.
#[test]
fn z_direction_rank_grid() {
    let params = MeshParams {
        npx: 1,
        npy: 1,
        npz: 4,
        init_x: 2,
        init_y: 2,
        init_z: 1,
        nx: 4,
        ny: 4,
        nz: 4,
        num_vars: 2,
        num_refine: 1,
        block_change: 1,
    };
    let mut cfg = Config::four_spheres(params, 4);
    cfg.stages_per_ts = 2;
    cfg.checksum_freq = 2;
    cfg.refine_freq = 2;
    cfg.workers = 2;
    let a = run(&cfg, NetworkModel::instant());
    let mut dcfg = cfg.clone();
    dcfg.variant = Variant::DataFlow;
    let b = run(&dcfg, NetworkModel::instant());
    assert_eq!(a[0].checksums, b[0].checksums);
}

/// Two refinement levels + an object crossing the whole mesh: blocks are
/// created, coarsened and migrated repeatedly.
#[test]
fn deep_refinement_with_migration() {
    let params = MeshParams {
        npx: 2,
        npy: 2,
        npz: 1,
        init_x: 1,
        init_y: 1,
        init_z: 2,
        nx: 4,
        ny: 4,
        nz: 4,
        num_vars: 2,
        num_refine: 2,
        block_change: 1,
    };
    let mut cfg = Config::single_sphere(params, 8);
    cfg.stages_per_ts = 2;
    cfg.checksum_freq = 4;
    cfg.refine_freq = 2;
    cfg.workers = 2;
    cfg.variant = Variant::DataFlow;
    cfg.send_faces = true;
    cfg.separate_buffers = true;
    let stats = run(&cfg, NetworkModel::cluster());
    let moved: u64 = stats.iter().map(|s| s.blocks_moved).sum();
    assert!(moved > 0, "the crossing sphere must force load balancing");
    // Blocks exist on every rank at the end (balanced).
    for s in &stats {
        assert!(s.final_blocks > 0, "rank {} ended empty", s.rank);
    }
}

/// The 27-point stencil variant produces self-consistent results across
/// variants too.
#[test]
fn twenty_seven_point_stencil() {
    let mut cfg = Config::smoke_test();
    cfg.stencil = amr_mesh::stencil::StencilKind::TwentySevenPoint;
    cfg.workers = 2;
    let a = run(&cfg, NetworkModel::instant());
    let mut dcfg = cfg.clone();
    dcfg.variant = Variant::DataFlow;
    let b = run(&dcfg, NetworkModel::instant());
    assert_eq!(a[0].checksums, b[0].checksums);
    // 27-point flops per cell differ from 7-point.
    assert!(a[0].flops > 0);
}

/// An extremely tight block budget forces multi-round NACK/retry in the
/// exchange protocol — and must still converge to the same answer.
#[test]
fn tight_block_budget_exchange() {
    let mut cfg = Config::smoke_test();
    cfg.num_tsteps = 4;
    cfg.refine_freq = 1;
    cfg.workers = 2;
    let reference = run(&cfg, NetworkModel::instant());
    // The mesh peaks around 15-40 blocks per rank in this config; a
    // budget just above the steady-state forces NACK rounds.
    let mut tight = cfg.clone();
    tight.max_blocks = 40;
    let constrained = run(&tight, NetworkModel::instant());
    assert_eq!(reference[0].checksums, constrained[0].checksums);
}

/// block_change = 2: two ±1 plans per refinement phase.
#[test]
fn multi_step_refinement_phase() {
    let mut cfg = Config::smoke_test();
    cfg.params.num_refine = 2;
    cfg.params.block_change = 2;
    cfg.num_tsteps = 4;
    cfg.refine_freq = 2;
    cfg.workers = 2;
    let a = run(&cfg, NetworkModel::instant());
    let mut dcfg = cfg.clone();
    dcfg.variant = Variant::DataFlow;
    let b = run(&dcfg, NetworkModel::instant());
    assert_eq!(a[0].checksums, b[0].checksums);
}

/// Tracing captures stencil/pack/unpack events and the data-flow variant
/// exhibits nonzero phase overlap even in a small run.
#[test]
fn trace_capture_works() {
    let mut cfg = Config::smoke_test();
    cfg.num_tsteps = 3;
    cfg.stages_per_ts = 4;
    cfg.trace = true;
    cfg.workers = 3;
    cfg.variant = Variant::DataFlow;
    cfg.send_faces = true;
    cfg.separate_buffers = true;
    let stats = run(
        &cfg,
        NetworkModel::new(std::time::Duration::from_micros(100), 1.0e9),
    );
    let tr = stats[0].trace.as_ref().expect("trace enabled");
    let totals = tr.totals();
    let has = |k: miniamr::trace::Kind| totals.iter().any(|(kk, d)| *kk == k && !d.is_zero());
    assert!(has(miniamr::trace::Kind::Stencil));
    assert!(has(miniamr::trace::Kind::Pack));
    assert!(has(miniamr::trace::Kind::Unpack));
    assert!(!tr.to_tsv().is_empty());
}

/// Shared buffers serialize directions through a false dependency; with
/// separate buffers the same schedule admits more concurrency — but the
/// results must be identical either way (already covered) and the
/// shared-buffer run must not race (the claim checker would panic).
#[test]
fn shared_buffer_false_dependency_is_safe() {
    let mut cfg = Config::smoke_test();
    cfg.variant = Variant::DataFlow;
    cfg.workers = 4;
    cfg.separate_buffers = false; // the racy-if-wrong configuration
    cfg.num_tsteps = 3;
    cfg.stages_per_ts = 4;
    let _ = run(&cfg, NetworkModel::cluster());
}

/// Longer soak with latency: many stages and checkpoints, delayed
/// checksum pipeline crossing several refinements.
#[test]
fn delayed_checksum_soak() {
    let mut cfg = Config::smoke_test();
    cfg.variant = Variant::DataFlow;
    cfg.num_tsteps = 6;
    cfg.stages_per_ts = 5;
    cfg.checksum_freq = 3;
    cfg.refine_freq = 2;
    cfg.delayed_checksum = true;
    cfg.workers = 2;
    let stats = run(
        &cfg,
        NetworkModel::new(std::time::Duration::from_micros(50), 1.0e9),
    );
    // 6*5 = 30 stages, checkpoint every 3 stages = 10 checkpoints, all
    // eventually validated (the pipeline drains at the end).
    assert_eq!(stats[0].checksums.len(), 10);
    assert_eq!(stats[0].checksums_passed, 10);
}

/// Single-rank world: no cross-rank messages at all, every variant still
/// works (all transfers become local copies).
#[test]
fn single_rank_degenerate_case() {
    let params = MeshParams {
        npx: 1,
        npy: 1,
        npz: 1,
        init_x: 2,
        init_y: 2,
        init_z: 2,
        nx: 4,
        ny: 4,
        nz: 4,
        num_vars: 2,
        num_refine: 1,
        block_change: 1,
    };
    let mut cfg = Config::four_spheres(params, 3);
    cfg.stages_per_ts = 3;
    cfg.checksum_freq = 3;
    cfg.refine_freq = 2;
    cfg.workers = 2;
    let mut reference: Option<Vec<Vec<f64>>> = None;
    for v in [Variant::MpiOnly, Variant::ForkJoin, Variant::DataFlow] {
        let mut c = cfg.clone();
        c.variant = v;
        let stats = run(&c, NetworkModel::instant());
        assert_eq!(stats[0].msgs_sent, 0, "single rank must not send messages");
        match &reference {
            None => reference = Some(stats[0].checksums.clone()),
            Some(r) => assert_eq!(r, &stats[0].checksums),
        }
    }
}
