//! Steady-state allocation behavior of the communication/compute hot path.
//!
//! The PR-1 rewrite promises: once workspaces, message buffers, and the
//! per-rank `BufferPool` are warm, a stage's packed-face path (pack →
//! unpack → stencil) performs **zero heap allocations**. A counting
//! global allocator verifies that directly; pool statistics from full
//! variant runs verify recycling end-to-end.

use miniamr::comm_plan::CommPlan;
use miniamr::rank::{
    apply_local_transfer, pack_transfer_into, transfer_payload_elems, unpack_transfer, RankState,
};
use miniamr::Config;
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

/// Wraps the system allocator, counting allocation events (alloc,
/// alloc_zeroed, realloc — not dealloc, which is alloc-free by nature)
/// **per thread**, so the measurement is immune to allocations from the
/// test harness or any other concurrently-running thread.
struct CountingAlloc;

thread_local! {
    static ALLOC_EVENTS: Cell<u64> = const { Cell::new(0) };
}

fn bump() {
    // Ignore accesses during TLS teardown — nothing is measured then.
    let _ = ALLOC_EVENTS.try_with(|c| c.set(c.get() + 1));
}

fn events() -> u64 {
    ALLOC_EVENTS.with(|c| c.get())
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        bump();
        unsafe { System.alloc(layout) }
    }
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        bump();
        unsafe { System.alloc_zeroed(layout) }
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        bump();
        unsafe { System.realloc(ptr, layout, new_size) }
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static COUNTER: CountingAlloc = CountingAlloc;

#[test]
fn packed_face_path_is_allocation_free_in_steady_state() {
    let cfg = Config::smoke_test();
    let state = RankState::init(&cfg, 0, 2);
    let plan = CommPlan::build(&cfg, &state.dir, 2);
    let vars = 0..cfg.params.num_vars;
    let nv = vars.len();

    // Local transfers whose src and dst both live on rank 0 exercise
    // pack → unpack of every transfer kind present in the plan.
    let locals: Vec<_> = plan
        .locals
        .iter()
        .filter(|t| t.src_rank == 0 && t.dst_rank == 0)
        .cloned()
        .collect();
    assert!(
        !locals.is_empty(),
        "smoke config must have rank-local transfers"
    );

    // Preallocated message-buffer stand-ins for the explicit
    // pack_into/unpack pairs.
    let mut payloads: Vec<Vec<f64>> = locals
        .iter()
        .map(|t| vec![0.0; transfer_payload_elems(t, nv)])
        .collect();

    let one_round = |payloads: &mut Vec<Vec<f64>>| {
        for (t, payload) in locals.iter().zip(payloads.iter_mut()) {
            let src = state.block(&t.src_block);
            let dst = state.block(&t.dst_block);
            // Explicit zero-copy pair (message-buffer path)...
            pack_transfer_into(&state.layout, src, t, vars.clone(), payload);
            unpack_transfer(&state.layout, dst, t, vars.clone(), payload);
            // ...and the pooled intra-rank path.
            apply_local_transfer(&state.layout, src, dst, t, vars.clone(), &state.pool);
        }
        for b in state.blocks.values() {
            amr_mesh::stencil::apply_stencil(b, &state.layout, cfg.stencil, vars.clone());
        }
    };

    // Warmup: grows the stencil workspace, the pool's free lists, and the
    // claim-table vectors to their steady-state capacity.
    one_round(&mut payloads);
    one_round(&mut payloads);

    let before = events();
    for _ in 0..10 {
        one_round(&mut payloads);
    }
    let after = events();
    assert_eq!(
        after - before,
        0,
        "steady-state packed-face path allocated {} times over 10 rounds",
        after - before
    );

    // The pooled path must be recycling, not allocating fresh.
    let pool = state.pool.stats();
    assert!(pool.hits > pool.misses, "pool not recycling: {pool:?}");
}
