//! Elastic service mode, end to end: malleable rank counts must never
//! change the physics.
//!
//! The hard guarantee under test: a run that grows or shrinks its world
//! mid-flight — by plan (`--resize_at`) or by failure (`--on_peer_lost
//! shrink`) — produces a final checksum digest **bitwise identical** to
//! the fixed-rank, fault-free run of the same scenario. The digest is
//! ownership-invariant (per-block sums folded in global block-id order),
//! a resize moves block data without touching a cell, and recovery
//! rewinds to a coordinated timestep boundary; any divergence means one
//! of those three pillars cracked.
//!
//! The multi-job tests run several complete, concurrently-resizing
//! scenario instances in one process, which is what forces the
//! checkpoint store, recovery hooks, boundary snapshots and replay-trace
//! epochs to stay keyed per job.

use amr_mesh::MeshParams;
use miniamr::{Config, ElasticOpts, JobCtx, PeerLostPolicy, ResizePlan, Variant};
use std::time::Duration;
use vmpi::{ChaosConfig, NetworkModel};

/// 2-rank base scenario (the smoke mesh): small enough to run many
/// elastic permutations, refining enough to exercise regrids.
fn base_cfg() -> Config {
    let mut cfg = Config::smoke_test();
    cfg.num_tsteps = 6;
    cfg.stages_per_ts = 3;
    cfg.checksum_freq = 3;
    cfg.refine_freq = 2;
    cfg.workers = 2;
    cfg
}

/// 4-rank scenario for the shrink-on-failure tests (a crash needs
/// survivors worth shrinking onto).
fn quad_cfg() -> Config {
    let params = MeshParams {
        npx: 2,
        npy: 2,
        npz: 1,
        init_x: 1,
        init_y: 1,
        init_z: 2,
        nx: 4,
        ny: 4,
        nz: 4,
        num_vars: 2,
        num_refine: 1,
        block_change: 1,
    };
    let mut cfg = Config::single_sphere(params, 6);
    cfg.stages_per_ts = 3;
    cfg.checksum_freq = 3;
    cfg.refine_freq = 2;
    cfg.workers = 2;
    cfg
}

fn fixed_digest(cfg: &Config, variant: Variant) -> u64 {
    let mut cfg = cfg.clone();
    cfg.variant = variant;
    let stats = miniamr::run_world(&cfg, cfg.params.num_ranks(), NetworkModel::instant());
    assert!(stats.iter().all(|s| s.checksums_failed == 0));
    stats[0].checksum_digest()
}

fn elastic_digest(cfg: &Config, variant: Variant, opts: &ElasticOpts) -> u64 {
    let mut cfg = cfg.clone();
    cfg.variant = variant;
    let stats = miniamr::elastic::run(&cfg, cfg.params.num_ranks(), NetworkModel::instant(), opts);
    assert!(
        stats.iter().all(|s| s.checksums_failed == 0),
        "elastic run failed validation"
    );
    // The final world's ranks must agree on the digest (it is broadcast).
    for s in &stats[1..] {
        assert_eq!(s.checksum_digest(), stats[0].checksum_digest());
    }
    stats[0].checksum_digest()
}

#[test]
fn grow_and_shrink_match_fixed_run_all_variants() {
    let base = base_cfg();
    for variant in [Variant::MpiOnly, Variant::ForkJoin, Variant::DataFlow] {
        let reference = fixed_digest(&base, variant);
        // Grow 2->6, shrink 6->3, shrink 3->2: exercises both directions
        // and a final world smaller than the start.
        let opts = ElasticOpts {
            plan: ResizePlan::default().at(2, 6).at(4, 3).at(5, 2),
            on_peer_lost: PeerLostPolicy::Abort,
        };
        let got = elastic_digest(&base, variant, &opts);
        assert_eq!(
            got, reference,
            "variant {variant:?}: elastic digest diverged from fixed-rank run"
        );
    }
}

#[test]
fn every_single_resize_point_is_digest_neutral() {
    // Property over the resize point: wherever the boundary falls
    // relative to regrids (refine_freq = 2 puts regrids at ts 2 and 4),
    // the digest must not move. This pins the checkpoint/restore
    // machinery across *changed* mesh epochs: resizing right after a
    // regrid restores a mesh that differs structurally from the initial
    // one, and the replay traces recorded before the boundary must not
    // leak through it.
    let base = base_cfg();
    let reference = fixed_digest(&base, Variant::DataFlow);
    for ts in 1..base.num_tsteps {
        for n in [3, 4] {
            let opts = ElasticOpts {
                plan: ResizePlan::default().at(ts, n),
                on_peer_lost: PeerLostPolicy::Abort,
            };
            let got = elastic_digest(&base, Variant::DataFlow, &opts);
            assert_eq!(
                got, reference,
                "resize to {n} ranks before ts {ts} changed the digest"
            );
        }
    }
}

#[test]
fn resize_across_regrid_boundary_invalidates_job_traces() {
    // A job-scoped run resizing across a regrid boundary must bump the
    // job's replay-trace epoch (each resize renames every block uid, so
    // cached dependency traces are structurally stale) — and still land
    // on the fixed-run digest.
    let base = base_cfg();
    let reference = fixed_digest(&base, Variant::DataFlow);
    let mut cfg = base.clone();
    let job = JobCtx::new(7, 0);
    cfg.job = Some(std::sync::Arc::clone(&job));
    let epoch_before = job.trace_epoch.load(std::sync::atomic::Ordering::SeqCst);
    let opts = ElasticOpts {
        // ts 3 is right after the ts-2 regrid: the restored mesh's epoch
        // differs from the recorded traces' world.
        plan: ResizePlan::default().at(3, 4),
        on_peer_lost: PeerLostPolicy::Abort,
    };
    let got = elastic_digest(&cfg, Variant::DataFlow, &opts);
    assert_eq!(got, reference);
    let epoch_after = job.trace_epoch.load(std::sync::atomic::Ordering::SeqCst);
    assert!(
        epoch_after > epoch_before,
        "resize did not invalidate the job's replay traces"
    );
}

#[test]
fn four_concurrent_resizing_jobs_agree() {
    // The soak harness core: >= 4 complete scenario instances resizing
    // concurrently in one process. Per-job keying of the checkpoint
    // store, boundary registry and trace epochs is exactly what this
    // breaks without.
    let base = base_cfg();
    let reference = fixed_digest(&base, Variant::DataFlow);
    let n_ranks = base.params.num_ranks();
    let handles: Vec<_> = (0..4u64)
        .map(|j| {
            let mut cfg = base.clone();
            cfg.variant = Variant::DataFlow;
            cfg.job = Some(JobCtx::new(j, (j as u32) * n_ranks as u32));
            // Different jobs resize at different points (and one not at
            // all) so their worlds are permanently out of lockstep.
            let plan = match j {
                0 => ResizePlan::default(),
                1 => ResizePlan::default().at(2, 4),
                2 => ResizePlan::default().at(3, 5).at(5, 2),
                _ => ResizePlan::default().at(1, 3).at(4, 6),
            };
            std::thread::spawn(move || {
                let opts = ElasticOpts {
                    plan,
                    on_peer_lost: PeerLostPolicy::Abort,
                };
                let stats = miniamr::elastic::run(&cfg, n_ranks, NetworkModel::instant(), &opts);
                assert!(stats.iter().all(|s| s.checksums_failed == 0));
                stats[0].checksum_digest()
            })
        })
        .collect();
    for (j, h) in handles.into_iter().enumerate() {
        let got = h.join().expect("job thread panicked");
        assert_eq!(got, reference, "job {j} diverged from the fixed-rank run");
    }
}

#[test]
fn shrink_on_failure_reproduces_fixed_digest() {
    // Kill rank 3's NIC mid-run; the shrink policy must rewind the
    // survivors to the latest coordinated boundary and still land on the
    // fault-free fixed-rank digest, for every variant (the data-flow
    // variant additionally exercises the poisoned-runtime unwind through
    // tampi holds and taskwait).
    let base = quad_cfg();
    for variant in [Variant::MpiOnly, Variant::ForkJoin, Variant::DataFlow] {
        let reference = fixed_digest(&base, variant);
        let mut cfg = base.clone();
        cfg.variant = variant;
        cfg.chaos = Some(ChaosConfig {
            seed: 7,
            crash_rank: Some(3),
            // Past the initial refinement exchange (so at least one
            // coordinated boundary exists) and well before the run ends
            // (rank 3 sends ~80 frames total in this scenario).
            crash_after: 40,
            retry_budget: 4,
            rto: Duration::from_millis(2),
            ..ChaosConfig::default()
        });
        let opts = ElasticOpts {
            plan: ResizePlan::default(),
            on_peer_lost: PeerLostPolicy::Shrink,
        };
        let stats =
            miniamr::elastic::run(&cfg, cfg.params.num_ranks(), NetworkModel::instant(), &opts);
        // The world shrank: fewer ranks than the grid came back.
        assert!(
            stats.len() < cfg.params.num_ranks(),
            "variant {variant:?}: the world never shrank (crash too late?)"
        );
        assert!(stats.iter().all(|s| s.checksums_failed == 0));
        assert_eq!(
            stats[0].checksum_digest(),
            reference,
            "variant {variant:?}: shrink-on-failure diverged from the fixed-rank run"
        );
    }
}

#[test]
fn disabled_path_is_the_fixed_run() {
    // No plan, abort policy, no job: elastic::run must short-circuit to
    // the plain fixed-rank path (this is the "disabled path parity" the
    // benchmark gate also checks — zero overhead when off).
    let base = base_cfg();
    let opts = ElasticOpts::default();
    for variant in [Variant::MpiOnly, Variant::DataFlow] {
        assert_eq!(
            elastic_digest(&base, variant, &opts),
            fixed_digest(&base, variant)
        );
    }
}
