//! Cross-variant equivalence: the backbone of this reproduction's
//! correctness argument.
//!
//! All three parallelizations (MPI-only, fork-join, data-flow) of the
//! same configuration must produce **bitwise-identical checksum
//! histories** — the mesh evolution, refinement decisions, load balancing
//! and numerical kernels are shared; only the orchestration differs. Any
//! divergence indicates a race, a lost/duplicated message, or a missing
//! task dependency.

use miniamr::{Config, Variant};
use vmpi::NetworkModel;

fn checksums_of(cfg: &Config, variant: Variant, net: NetworkModel) -> Vec<Vec<f64>> {
    let mut cfg = cfg.clone();
    cfg.variant = variant;
    let stats = miniamr::run_world(&cfg, cfg.params.num_ranks(), net);
    for s in &stats {
        assert_eq!(
            s.checksums_failed, 0,
            "variant {variant:?} failed validation"
        );
    }
    // Checksums are broadcast: every rank returns the identical history.
    for s in &stats[1..] {
        assert_eq!(
            s.checksums, stats[0].checksums,
            "ranks disagree on checksums"
        );
    }
    stats[0].checksums.clone()
}

fn base_cfg() -> Config {
    let mut cfg = Config::smoke_test();
    cfg.num_tsteps = 4;
    cfg.stages_per_ts = 3;
    cfg.checksum_freq = 3;
    cfg.refine_freq = 2;
    cfg.workers = 2;
    cfg
}

#[test]
fn all_variants_agree_bitwise() {
    let cfg = base_cfg();
    let a = checksums_of(&cfg, Variant::MpiOnly, NetworkModel::instant());
    let b = checksums_of(&cfg, Variant::ForkJoin, NetworkModel::instant());
    let c = checksums_of(&cfg, Variant::DataFlow, NetworkModel::instant());
    assert!(!a.is_empty());
    assert_eq!(a, b, "fork-join diverged from MPI-only");
    assert_eq!(a, c, "data-flow diverged from MPI-only");
}

#[test]
fn agreement_survives_network_latency() {
    // Delayed message availability must reorder nothing observable.
    let cfg = base_cfg();
    let net = || NetworkModel::new(std::time::Duration::from_micros(200), 1.0e9);
    let a = checksums_of(&cfg, Variant::MpiOnly, net());
    let c = checksums_of(&cfg, Variant::DataFlow, net());
    assert_eq!(a, c);
}

#[test]
fn dataflow_options_do_not_change_results() {
    let base = base_cfg();
    let reference = checksums_of(&base, Variant::DataFlow, NetworkModel::instant());

    for (send_faces, separate, max_tasks) in [
        (true, true, 0),
        (true, false, 2),
        (false, true, 0),
        (true, true, 3),
    ] {
        let mut cfg = base.clone();
        cfg.send_faces = send_faces;
        cfg.separate_buffers = separate;
        cfg.max_comm_tasks = max_tasks;
        let got = checksums_of(&cfg, Variant::DataFlow, NetworkModel::instant());
        assert_eq!(
            got, reference,
            "options send_faces={send_faces} separate={separate} max_comm_tasks={max_tasks} changed results"
        );
    }
}

#[test]
fn delayed_checksum_validates_same_values() {
    let base = base_cfg();
    let eager = checksums_of(&base, Variant::DataFlow, NetworkModel::instant());
    let mut cfg = base.clone();
    cfg.delayed_checksum = true;
    let delayed = checksums_of(&cfg, Variant::DataFlow, NetworkModel::instant());
    assert_eq!(eager, delayed, "delayed validation saw different sums");
}

#[test]
fn worker_count_does_not_change_results() {
    let base = base_cfg();
    let mut one = base.clone();
    one.workers = 1;
    let mut four = base.clone();
    four.workers = 4;
    let a = checksums_of(&one, Variant::DataFlow, NetworkModel::instant());
    let b = checksums_of(&four, Variant::DataFlow, NetworkModel::instant());
    assert_eq!(a, b);
}

#[test]
fn rcb_balancer_matches_sfc_results() {
    // The balancer moves blocks differently but must not change physics.
    // The global checksum folds per-block sums in global block-id order
    // regardless of which rank owns each block, so the comparison is
    // bitwise — the same ownership-invariance the elastic resize
    // machinery relies on.
    let base = base_cfg();
    let sfc = checksums_of(&base, Variant::MpiOnly, NetworkModel::instant());
    let mut cfg = base.clone();
    cfg.balance = miniamr::BalanceKind::Rcb;
    let rcb = checksums_of(&cfg, Variant::MpiOnly, NetworkModel::instant());
    assert_eq!(sfc, rcb, "balancers diverged bitwise");
}

#[test]
fn capacity_limited_exchange_still_converges() {
    // A tight per-rank block budget forces NACK/retry rounds in the
    // exchange protocol.
    let mut cfg = base_cfg();
    cfg.max_blocks = 64; // enough to hold the mesh, tight enough to NACK
    let a = checksums_of(&cfg, Variant::MpiOnly, NetworkModel::instant());
    let mut unlimited = base_cfg();
    unlimited.max_blocks = usize::MAX;
    let b = checksums_of(&unlimited, Variant::MpiOnly, NetworkModel::instant());
    assert_eq!(a, b, "capacity-limited exchange changed results");
}

#[test]
fn multiple_comm_groups_agree_with_single_group() {
    let mut grouped = base_cfg();
    grouped.comm_vars = 1; // one group per variable
    let a = checksums_of(&grouped, Variant::MpiOnly, NetworkModel::instant());
    let b = checksums_of(&base_cfg(), Variant::MpiOnly, NetworkModel::instant());
    assert_eq!(a, b);
    let c = checksums_of(&grouped, Variant::DataFlow, NetworkModel::instant());
    assert_eq!(a, c, "data-flow with per-var groups diverged");
}

#[test]
fn single_sphere_input_runs_all_variants() {
    let params = amr_mesh::MeshParams {
        npx: 2,
        npy: 1,
        npz: 1,
        init_x: 1,
        init_y: 2,
        init_z: 2,
        nx: 4,
        ny: 4,
        nz: 4,
        num_vars: 2,
        num_refine: 1,
        block_change: 1,
    };
    let mut cfg = Config::single_sphere(params, 4);
    cfg.stages_per_ts = 2;
    cfg.checksum_freq = 2;
    cfg.refine_freq = 2;
    cfg.workers = 2;
    let a = checksums_of(&cfg, Variant::MpiOnly, NetworkModel::instant());
    let b = checksums_of(&cfg, Variant::DataFlow, NetworkModel::instant());
    assert_eq!(a, b);
}
