//! Demonstrates the mechanism at the heart of the paper: binding
//! in-flight communication to task completion lets unrelated computation
//! proceed while messages are on the wire.
//!
//! Two ranks exchange a large payload over a slow (5 ms latency)
//! simulated network. The *blocking* schedule waits for the message
//! before computing; the *data-flow* schedule issues a task-aware receive
//! and keeps computing independent work, absorbing the latency. Both
//! consume the payload through the same dependency-ordered consumer task.
//!
//! ```text
//! cargo run --release --example dataflow_overlap
//! ```

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use taskrt::{ObjId, Region, Runtime};
use vmpi::{NetworkModel, SharedBuffer, World};

const PAYLOAD: usize = 4096;
const INDEPENDENT_TASKS: usize = 24;

fn busy_work(iters: u64) -> f64 {
    let mut x = 1.0f64;
    for i in 0..iters {
        x = (x + i as f64).sqrt() + 1.0;
    }
    x
}

fn run(overlapped: bool) -> Duration {
    let net = NetworkModel::new(Duration::from_millis(5), 1.0e9);
    let world = World::new(2, net);
    let times = world.run(|comm| {
        let comm = Arc::new(comm);
        let rt = Runtime::new(2);
        let start = Instant::now();
        if comm.rank() == 0 {
            comm.isend(&vec![7.0f64; PAYLOAD], 1, 0).unwrap().wait();
            start.elapsed()
        } else {
            let sink = Arc::new(AtomicU64::new(0));
            let buf = SharedBuffer::<f64>::new(PAYLOAD);
            let obj = ObjId::fresh();

            if overlapped {
                // Data-flow: the receive is a task whose dependencies
                // release on arrival; independent work fills the wait.
                let c = Arc::clone(&comm);
                let slice = buf.full();
                rt.task()
                    .out(Region::new(obj, 0..PAYLOAD))
                    .body(move || tampi::irecv_into(&c, slice, 0, 0).unwrap())
                    .spawn();
            } else {
                // Blocking: the main thread waits for the payload before
                // anything else happens.
                let mut data = vec![0.0f64; PAYLOAD];
                comm.recv_into(&mut data, 0, 0).unwrap();
                buf.full().write_from(&data);
            }

            for _ in 0..INDEPENDENT_TASKS {
                let sink = Arc::clone(&sink);
                rt.spawn(Vec::new(), move || {
                    let v = busy_work(40_000);
                    sink.fetch_add(v as u64, Ordering::Relaxed);
                });
            }

            // The consumer is dependency-ordered after the receive.
            let slice = buf.full();
            rt.task()
                .input(Region::new(obj, 0..PAYLOAD))
                .body(move || assert_eq!(slice.to_vec()[PAYLOAD - 1], 7.0))
                .spawn();
            rt.taskwait();
            start.elapsed()
        }
    });
    times[1]
}

fn main() {
    // Warm up thread pools and caches.
    let _ = run(true);

    let blocking = run(false);
    let overlapped = run(true);
    println!(
        "blocking schedule:  {:>7.2} ms",
        blocking.as_secs_f64() * 1e3
    );
    println!(
        "data-flow schedule: {:>7.2} ms",
        overlapped.as_secs_f64() * 1e3
    );
    println!(
        "overlap recovered {:.1}% of the blocking time",
        (1.0 - overlapped.as_secs_f64() / blocking.as_secs_f64()) * 100.0
    );
    assert!(
        overlapped < blocking,
        "task-aware communication failed to overlap the network latency"
    );
}
