//! The *single sphere* input problem (Rico et al., used in the paper's
//! Table I): a large sphere enters the mesh from a lower corner,
//! progressively refining the intersected region and loading the ranks
//! that own that corner — the canonical load-imbalance scenario.
//!
//! This example runs the data-flow variant and prints how the mesh and
//! the per-rank block distribution evolve at every refinement phase.
//!
//! ```text
//! cargo run --release --example single_sphere
//! ```

use amr_mesh::{MeshDirectory, MeshParams};
use miniamr::{Config, Variant};
use vmpi::NetworkModel;

fn main() {
    let params = MeshParams {
        npx: 2,
        npy: 2,
        npz: 1,
        init_x: 2,
        init_y: 2,
        init_z: 4,
        nx: 6,
        ny: 6,
        nz: 6,
        num_vars: 4,
        num_refine: 2,
        block_change: 1,
    };
    let mut cfg = Config::single_sphere(params.clone(), 10);
    cfg.stages_per_ts = 4;
    cfg.checksum_freq = 8;
    cfg.refine_freq = 2;
    cfg.variant = Variant::DataFlow;
    cfg.workers = 2;
    cfg.send_faces = true;
    cfg.separate_buffers = true;
    cfg.max_comm_tasks = 8;

    // Show the mesh structure evolution first (structure-only replay).
    println!("mesh evolution (structure replay):");
    println!(
        "{:<6} {:>7} {:>8}  per-rank blocks",
        "phase", "blocks", "levels"
    );
    let mut dir = MeshDirectory::initial(params);
    let mut objects = cfg.objects.clone();
    dir.refine_to_fixpoint(&objects);
    print_mesh("init", &dir);
    for phase in 1..=5 {
        for o in objects.iter_mut() {
            o.step();
            o.step();
        }
        let plan = dir.plan_refinement(&objects);
        dir.apply_plan(&plan);
        let part = amr_mesh::partition::sfc_partition(&dir, 4);
        for (id, owner) in part {
            dir.set_owner(id, owner);
        }
        print_mesh(&format!("r{phase}"), &dir);
    }

    // Then actually simulate with data.
    println!("\nrunning the data-flow variant (4 ranks x 2 workers)...");
    let t0 = std::time::Instant::now();
    let stats = miniamr::run_world(&cfg, 4, NetworkModel::cluster());
    println!("wall time: {:.2}s", t0.elapsed().as_secs_f64());
    for s in &stats {
        println!(
            "rank {}: {} blocks, {} tasks, comm {:.0}ms, stencil {:.0}ms, refine {:.0}ms",
            s.rank,
            s.final_blocks,
            s.tasks_spawned,
            s.times.communicate.as_secs_f64() * 1e3,
            s.times.stencil.as_secs_f64() * 1e3,
            s.times.refine.as_secs_f64() * 1e3,
        );
        assert_eq!(s.checksums_failed, 0);
    }
    println!("validation: all checksums passed ✓");
}

fn print_mesh(label: &str, dir: &MeshDirectory) {
    let mut levels: Vec<u8> = dir.iter().map(|(b, _)| b.level).collect();
    levels.sort_unstable();
    levels.dedup();
    let counts = dir.counts_per_rank(4);
    println!("{:<6} {:>7} {:>8?}  {:?}", label, dir.len(), levels, counts);
}
