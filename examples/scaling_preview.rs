//! A tour of the `simnet` API: extract a workload from a real mesh
//! evolution and preview how the three execution models scale it —
//! a miniature of the Figure 4 study that runs in seconds.
//!
//! ```text
//! cargo run --release --example scaling_preview
//! ```

use simnet::workload::WorkloadParams;
use simnet::{rank_grid_for, simulate, CostModel, ExecModel, Workload};

fn main() {
    let cost = CostModel::default();
    println!("nodes  mpi[s]   fj[s]    df[s]   df/mpi  df_refine%");
    for nodes in [1usize, 2, 4, 8] {
        // 48 cores per node; the hybrid variants run 4 ranks/node × 12
        // workers. Same root mesh for everyone.
        let roots = (4 * nodes, 4, 3);
        let objects = vec![
            amr_mesh::Object::sphere([0.25, 0.4, 0.5], 0.15, [0.03, 0.0, 0.0]),
            amr_mesh::Object::sphere([0.75, 0.6, 0.5], 0.15, [-0.03, 0.0, 0.0]),
        ];
        let gen = |ranks: usize, rpn: usize, msgs: usize| -> Workload {
            let mesh = rank_grid_for(roots, (12, 12, 12), 20, 2, ranks)
                .expect("rank grid divides the root blocks");
            Workload::generate(&WorkloadParams {
                mesh,
                objects: objects.clone(),
                num_tsteps: 20,
                stages_per_ts: 10,
                checksum_freq: 10,
                refine_freq: 5,
                msgs_per_pair_dir: msgs,
                ranks_per_node: rpn,
                coll_hier: false,
                coalesce: false,
                eager_bytes: CostModel::default().fabric.eager_threshold,
            })
        };
        let w_mpi = gen(48 * nodes, 48, 0);
        let w_hyb = gen(4 * nodes, 4, 8);

        let mpi = simulate(&w_mpi, &ExecModel::MpiOnly, &cost);
        let fj = simulate(&w_hyb, &ExecModel::ForkJoin { workers: 12 }, &cost);
        let df = simulate(&w_hyb, &ExecModel::dataflow(12), &cost);
        println!(
            "{nodes:>5}  {:>7.2}  {:>7.2}  {:>7.2}  {:>6.2}  {:>9.1}",
            mpi.total,
            fj.total,
            df.total,
            mpi.total / df.total,
            100.0 * df.refine / df.total,
        );
    }
    println!("\n(the full Figure 4/5 sweeps: cargo run --release -p amr-bench --bin weak_scaling)");
}
