//! The *four spheres* input problem (Vaughan et al., used in the paper's
//! Table II and Figures 4–5): two pairs of spheres cross the mesh in
//! opposite directions along X, passing near the center without
//! colliding. The refined region follows the spheres, so blocks are
//! created, destroyed and rebalanced continuously.
//!
//! This example compares the three variants' phase times on the same
//! input and prints the communication statistics.
//!
//! ```text
//! cargo run --release --example four_spheres
//! ```

use miniamr::{Config, Variant};
use vmpi::NetworkModel;

fn main() {
    let params = amr_mesh::MeshParams {
        npx: 2,
        npy: 2,
        npz: 1,
        init_x: 2,
        init_y: 2,
        init_z: 4,
        nx: 6,
        ny: 6,
        nz: 6,
        num_vars: 8,
        num_refine: 1,
        block_change: 1,
    };
    let base = {
        let mut cfg = Config::four_spheres(params, 10);
        cfg.stages_per_ts = 6;
        cfg.checksum_freq = 6;
        cfg.refine_freq = 5;
        cfg.workers = 2;
        cfg
    };

    println!(
        "{:<10} {:>9} {:>9} {:>9} {:>9} {:>8} {:>8}",
        "variant", "total[s]", "comm[s]", "stencil", "refine", "msgs", "moved"
    );
    let mut reference: Option<Vec<Vec<f64>>> = None;
    for variant in [Variant::MpiOnly, Variant::ForkJoin, Variant::DataFlow] {
        let mut cfg = base.clone();
        cfg.variant = variant;
        if variant == Variant::DataFlow {
            cfg.send_faces = true;
            cfg.separate_buffers = true;
            cfg.max_comm_tasks = 8;
            cfg.delayed_checksum = true;
        }
        let net = NetworkModel::new(std::time::Duration::from_micros(40), 4.0e9);
        let stats = miniamr::run_world(&cfg, 4, net);
        let max = |f: fn(&miniamr::RunStats) -> std::time::Duration| {
            stats.iter().map(f).max().unwrap_or_default().as_secs_f64()
        };
        println!(
            "{:<10} {:>9.2} {:>9.2} {:>9.2} {:>9.2} {:>8} {:>8}",
            format!("{variant:?}"),
            max(|s| s.times.total),
            max(|s| s.times.communicate),
            max(|s| s.times.stencil),
            max(|s| s.times.refine),
            stats.iter().map(|s| s.msgs_sent).sum::<u64>(),
            stats.iter().map(|s| s.blocks_moved).sum::<u64>(),
        );
        for s in &stats {
            assert_eq!(s.checksums_failed, 0, "{variant:?} failed validation");
        }
        match &reference {
            None => reference = Some(stats[0].checksums.clone()),
            Some(r) => assert_eq!(r, &stats[0].checksums, "{variant:?} diverged"),
        }
    }
    println!("\nall variants agree bitwise ✓ (the spheres moved, blocks refined,");
    println!("coarsened and migrated — and every variant saw the identical physics)");
}
