//! Quickstart: run the same small AMR simulation under all three
//! parallelization variants and confirm they agree bitwise.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use miniamr::{Config, Variant};
use vmpi::NetworkModel;

fn main() {
    // A 2-rank mesh: 2×2×2 root blocks of 4³ cells × 2 variables, one
    // sphere drifting through it, refinement up to one level.
    let mut cfg = Config::smoke_test();
    cfg.num_tsteps = 4;
    cfg.stages_per_ts = 4;
    cfg.checksum_freq = 4;
    cfg.refine_freq = 2;
    cfg.workers = 2;

    println!("variant     wall[ms]  tasks  blocks  checksums  msgs");
    let mut reference: Option<Vec<Vec<f64>>> = None;
    for variant in [Variant::MpiOnly, Variant::ForkJoin, Variant::DataFlow] {
        let mut cfg = cfg.clone();
        cfg.variant = variant;
        if variant == Variant::DataFlow {
            // The paper's tuned communication options (§IV-A).
            cfg.send_faces = true;
            cfg.separate_buffers = true;
            cfg.max_comm_tasks = 8;
        }
        let t0 = std::time::Instant::now();
        let stats = miniamr::run_world(&cfg, 2, NetworkModel::cluster());
        let wall = t0.elapsed().as_secs_f64() * 1e3;

        let s0 = &stats[0];
        assert_eq!(s0.checksums_failed, 0, "validation failed");
        println!(
            "{:<10} {:>9.1} {:>6} {:>7} {:>10} {:>5}",
            format!("{variant:?}"),
            wall,
            stats.iter().map(|s| s.tasks_spawned).sum::<u64>(),
            stats.iter().map(|s| s.final_blocks).sum::<usize>(),
            s0.checksums_passed,
            stats.iter().map(|s| s.msgs_sent).sum::<u64>(),
        );

        // The headline property: every variant computes bitwise-identical
        // checksums.
        match &reference {
            None => reference = Some(s0.checksums.clone()),
            Some(r) => assert_eq!(r, &s0.checksums, "{variant:?} diverged from MPI-only"),
        }
    }
    println!("\nall variants produced bitwise-identical checksums ✓");
}
