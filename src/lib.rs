//! # miniamr-repro — umbrella crate
//!
//! A from-scratch Rust reproduction of *"Towards Data-Flow
//! Parallelization for Adaptive Mesh Refinement Applications"* (Sala,
//! Rico, Beltran; IEEE CLUSTER 2020). See the repository README for the
//! architecture and DESIGN.md / EXPERIMENTS.md for the reproduction
//! methodology and results.
//!
//! This crate re-exports the workspace members so integration tests and
//! examples can reach everything through one dependency:
//!
//! * [`shmem`] — shared buffers with dynamic race detection
//! * [`vmpi`] — the in-process message-passing substrate
//! * [`taskrt`] — the OmpSs-2-like data-flow task runtime
//! * [`tampi`] — the task-aware communication layer
//! * [`amr_mesh`] — the AMR mesh engine
//! * [`miniamr`] — the proxy application and its three variants
//! * [`simnet`] — the at-scale cluster performance model

pub use amr_mesh;
pub use miniamr;
pub use shmem;
pub use simnet;
pub use tampi;
pub use taskrt;
pub use vmpi;
